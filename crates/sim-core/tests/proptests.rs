//! Property tests for the simulation kernel.

use proptest::prelude::*;
use sim_core::{transfer_time, EventQueue, SimTime, SplitMix64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always pop in non-decreasing time order, FIFO at ties.
    #[test]
    fn queue_orders_events(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_idx_at_time: Option<usize> = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_idx_at_time {
                    prop_assert!(idx > prev, "FIFO violated at {t}");
                }
            }
            last_idx_at_time = Some(idx);
            last_time = t;
        }
        prop_assert_eq!(q.total_popped(), times.len() as u64);
    }

    /// transfer_time is monotone in bytes and antitone in bandwidth,
    /// and never under-reports (ceil rounding).
    #[test]
    fn transfer_time_monotone(bytes in 0u64..1_000_000_000, bw in 1u64..100_000_000_000) {
        let t = transfer_time(bytes, bw);
        prop_assert!(transfer_time(bytes + 1, bw) >= t);
        prop_assert!(transfer_time(bytes, bw.saturating_mul(2)) <= t);
        let moved = t.as_secs_f64() * bw as f64;
        prop_assert!(moved + 1e-6 >= bytes as f64);
    }

    /// SimTime arithmetic is consistent with u64 picoseconds.
    #[test]
    fn simtime_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (x, y) = (SimTime::from_picos(a), SimTime::from_picos(b));
        prop_assert_eq!((x + y).as_picos(), a + b);
        prop_assert_eq!(x.max(y).as_picos(), a.max(b));
        prop_assert_eq!(x.min(y).as_picos(), a.min(b));
        prop_assert_eq!(x.saturating_sub(y).as_picos(), a.saturating_sub(b));
    }

    /// SplitMix64 streams are reproducible and forks deterministic.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let fork_a = a.fork();
        let fork_b = b.fork();
        prop_assert_eq!(fork_a, fork_b);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// next_below never exceeds its bound; chance(0)/chance(1) are
    /// degenerate as expected.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
        prop_assert!(!rng.chance(0.0));
        prop_assert!(rng.chance(1.0));
    }
}
