//! Uniform simulation components under one deterministic scheduler.
//!
//! [`EventQueue`](crate::EventQueue) is a *passive* kernel: simulators
//! push opaque events and drive the loop themselves. Larger
//! compositions — a cluster router feeding an interconnect feeding N
//! device replicas — want the inverse shape: each participant is a
//! [`Component`] that knows when it next has work ([`Component::next_tick`])
//! and how to do it ([`Component::tick`]), while a [`Scheduler`] owns
//! the global clock and the firing order. This generalizes the serving
//! engine's specialized three-way event core: "next event" becomes an
//! N-way minimum over every component's announced tick, with the same
//! `(time, seq)` FIFO tie-breaking as [`EventQueue`](crate::EventQueue).
//!
//! # Determinism contract
//!
//! * The scheduler fires the component with the earliest announced
//!   tick; ties break FIFO by *arm order* — the step at which the
//!   component last changed its announcement. Re-arming at the same
//!   instant sends a component to the back of that instant's queue,
//!   exactly like re-scheduling an event.
//! * Components are polled in slice order when (re)arming, so two
//!   components arming in the same step are ordered by their position —
//!   registration order, as stable as an event queue's schedule order.
//! * Time never moves backwards: a component announcing a tick earlier
//!   than the clock is a simulator bug and panics immediately.
//!
//! Components communicate only through the shared context `Ctx` handed
//! to every `tick` — typically a struct of mailboxes — so a run is a
//! pure function of (components, ctx) with no hidden ordering.
//!
//! # Example
//!
//! ```
//! use sim_core::component::{Component, Scheduler};
//! use sim_core::SimTime;
//!
//! /// Emits one value into the shared log every `period`.
//! struct Ticker { label: u32, period: SimTime, due: SimTime, left: u32 }
//! impl Component<Vec<(u64, u32)>> for Ticker {
//!     fn next_tick(&self, _: &Vec<(u64, u32)>) -> Option<SimTime> {
//!         (self.left > 0).then_some(self.due)
//!     }
//!     fn tick(&mut self, now: SimTime, log: &mut Vec<(u64, u32)>) {
//!         log.push((now.as_nanos(), self.label));
//!         self.left -= 1;
//!         self.due = now + self.period;
//!     }
//! }
//!
//! let mut a = Ticker { label: 0, period: SimTime::from_nanos(10), due: SimTime::ZERO, left: 3 };
//! let mut b = Ticker { label: 1, period: SimTime::from_nanos(15), due: SimTime::ZERO, left: 2 };
//! let mut log = Vec::new();
//! let mut sched = Scheduler::new();
//! let fired = sched.run(&mut [&mut a, &mut b], &mut log);
//! assert_eq!(fired, 5);
//! // Same-instant ties (t=0) fire in slice order.
//! assert_eq!(log, vec![(0, 0), (0, 1), (10, 0), (15, 1), (20, 0)]);
//! assert_eq!(sched.now(), SimTime::from_nanos(20));
//! ```

use crate::time::SimTime;

/// A simulation participant driven by a [`Scheduler`].
///
/// `Ctx` is the shared communication fabric (mailboxes, buses, logs)
/// every component of one composition ticks against.
pub trait Component<Ctx> {
    /// The next instant this component has work, or `None` when idle.
    ///
    /// `ctx` is read-only here so mailbox-driven components (an
    /// interconnect draining a wire queue, a device draining an inbox)
    /// can announce work that lives in the shared fabric. Must be `>=`
    /// the clock value passed to the most recent [`tick`](Self::tick)
    /// — announcing the past panics the scheduler.
    fn next_tick(&self, ctx: &Ctx) -> Option<SimTime>;

    /// Performs the work announced for `now`, communicating only
    /// through `ctx`. May re-arm at `now` (back of the same-instant
    /// FIFO) or any later time, or go idle.
    fn tick(&mut self, now: SimTime, ctx: &mut Ctx);
}

/// One firing delivered by [`Scheduler::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Firing {
    /// The instant the component ticked at.
    pub at: SimTime,
    /// Index of the fired component in the slice passed to `step`.
    pub component: usize,
}

/// Deterministic driver: owns global time and the `(time, seq)` FIFO
/// firing order over a slice of [`Component`]s.
///
/// The scheduler holds no component state — callers keep concrete
/// ownership and pass the same slice (same components, same order) to
/// every [`step`](Self::step)/[`run`](Self::run) call of one
/// composition.
#[derive(Debug, Default)]
pub struct Scheduler {
    /// Per-component cached announcement and the arm seq it got.
    armed: Vec<(Option<SimTime>, u64)>,
    seq: u64,
    now: SimTime,
    fired: u64,
}

impl Scheduler {
    /// A scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time: the instant of the last firing.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total firings delivered so far.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Re-polls every component in slice order, stamping a fresh arm
    /// seq whenever an announcement changed since last observed.
    fn rearm<Ctx>(&mut self, components: &[&mut dyn Component<Ctx>], ctx: &Ctx) {
        if self.armed.len() < components.len() {
            self.armed.resize(components.len(), (None, 0));
        }
        for (i, c) in components.iter().enumerate() {
            let next = c.next_tick(ctx);
            if next != self.armed[i].0 {
                self.seq += 1;
                self.armed[i] = (next, self.seq);
            }
        }
    }

    /// Fires the earliest-armed component, advancing the clock, or
    /// returns `None` when every component is idle.
    ///
    /// # Panics
    ///
    /// If the winning announcement precedes the clock (causality
    /// violation — a component announced the past).
    pub fn step<Ctx>(
        &mut self,
        components: &mut [&mut dyn Component<Ctx>],
        ctx: &mut Ctx,
    ) -> Option<Firing> {
        self.rearm(&*components, ctx);
        let winner = self
            .armed
            .iter()
            .take(components.len())
            .enumerate()
            .filter_map(|(i, &(t, s))| t.map(|t| (t, s, i)))
            .min()?;
        let (at, _, component) = winner;
        assert!(
            at >= self.now,
            "causality violation: component {component} announced {at:?} before now {:?}",
            self.now
        );
        self.now = at;
        self.fired += 1;
        components[component].tick(at, ctx);
        // Firing consumed the arm: the component re-arms fresh even if
        // it announces the same instant again (back of that instant's
        // FIFO), mirroring event re-scheduling.
        self.seq += 1;
        self.armed[component] = (components[component].next_tick(ctx), self.seq);
        Some(Firing { at, component })
    }

    /// Steps until every component is idle; returns the firing count.
    pub fn run<Ctx>(&mut self, components: &mut [&mut dyn Component<Ctx>], ctx: &mut Ctx) -> u64 {
        let start = self.fired;
        while self.step(components, ctx).is_some() {}
        self.fired - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// A component replaying a fixed (time, label) schedule into ctx.
    struct Replay {
        events: Vec<(SimTime, u32)>,
        next: usize,
    }
    impl Replay {
        fn new(mut events: Vec<(SimTime, u32)>) -> Self {
            events.sort_by_key(|&(t, _)| t);
            Replay { events, next: 0 }
        }
    }
    impl Component<Vec<(SimTime, u32)>> for Replay {
        fn next_tick(&self, _: &Vec<(SimTime, u32)>) -> Option<SimTime> {
            self.events.get(self.next).map(|&(t, _)| t)
        }
        fn tick(&mut self, now: SimTime, log: &mut Vec<(SimTime, u32)>) {
            let (t, label) = self.events[self.next];
            assert_eq!(t, now);
            log.push((now, label));
            self.next += 1;
        }
    }

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn matches_event_queue_ordering() {
        // The same schedule delivered through an EventQueue and through
        // two Replay components must agree on order, including ties
        // (queue FIFO == scheduler slice order for same-step arms).
        let a = vec![(ns(5), 0), (ns(10), 1), (ns(10), 2)];
        let b = vec![(ns(5), 10), (ns(7), 11), (ns(30), 12)];

        let mut q = EventQueue::new();
        for &(t, l) in a.iter().chain(&b) {
            q.schedule(t, l);
        }
        // Interleave: EventQueue FIFO on ties follows schedule order;
        // `a`'s events were scheduled before `b`'s at each shared time.
        let mut via_queue = Vec::new();
        while let Some((t, l)) = q.pop() {
            via_queue.push((t, l));
        }

        let mut ca = Replay::new(a);
        let mut cb = Replay::new(b);
        let mut log = Vec::new();
        let mut sched = Scheduler::new();
        let fired = sched.run(&mut [&mut ca, &mut cb], &mut log);
        assert_eq!(fired, 6);
        assert_eq!(log, via_queue);
        assert_eq!(sched.now(), ns(30));
    }

    #[test]
    fn rearm_at_same_instant_goes_to_back_of_fifo() {
        /// Fires once at t=10, re-arms once more at the same instant.
        struct Echo {
            shots: u32,
        }
        impl Component<Vec<(SimTime, u32)>> for Echo {
            fn next_tick(&self, _: &Vec<(SimTime, u32)>) -> Option<SimTime> {
                (self.shots > 0).then_some(ns(10))
            }
            fn tick(&mut self, now: SimTime, log: &mut Vec<(SimTime, u32)>) {
                log.push((now, 100 + self.shots));
                self.shots -= 1;
            }
        }
        let mut echo = Echo { shots: 2 };
        let mut other = Replay::new(vec![(ns(10), 0)]);
        let mut log = Vec::new();
        Scheduler::new().run(&mut [&mut echo, &mut other], &mut log);
        // First firing: echo (slice order). Its re-arm at the same
        // instant gets a fresh seq, so `other` (armed earlier) fires
        // before echo's second shot.
        assert_eq!(log, vec![(ns(10), 102), (ns(10), 0), (ns(10), 101)]);
    }

    #[test]
    fn idle_components_cost_nothing() {
        struct Idle;
        impl Component<Vec<(SimTime, u32)>> for Idle {
            fn next_tick(&self, _: &Vec<(SimTime, u32)>) -> Option<SimTime> {
                None
            }
            fn tick(&mut self, _: SimTime, _: &mut Vec<(SimTime, u32)>) {
                unreachable!("idle component must never tick");
            }
        }
        let mut idle = Idle;
        let mut live = Replay::new(vec![(ns(1), 7)]);
        let mut log = Vec::new();
        let mut sched = Scheduler::new();
        assert_eq!(sched.run(&mut [&mut idle, &mut live], &mut log), 1);
        assert_eq!(log, vec![(ns(1), 7)]);
        assert!(sched
            .step(
                &mut [&mut idle as &mut dyn Component<_>, &mut live],
                &mut log
            )
            .is_none());
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn announcing_the_past_panics() {
        struct Rewind {
            first: bool,
        }
        impl Component<()> for Rewind {
            fn next_tick(&self, _: &()) -> Option<SimTime> {
                Some(if self.first { ns(10) } else { ns(3) })
            }
            fn tick(&mut self, _: SimTime, _: &mut ()) {
                self.first = false;
            }
        }
        let mut r = Rewind { first: true };
        Scheduler::new().run(&mut [&mut r], &mut ());
    }
}
