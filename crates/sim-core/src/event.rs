//! A minimal discrete-event simulation kernel.
//!
//! The kernel is a time-ordered priority queue of opaque events plus a
//! monotonically advancing clock. Simulators (the flash device, the NPU,
//! the full Cambricon-LLM system) define their own event payload type `E`
//! and drive the loop themselves:
//!
//! ```
//! use sim_core::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_nanos(10), Ev::Pong);
//! q.schedule(SimTime::from_nanos(5), Ev::Ping);
//!
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1.as_nanos(), e1), (5, Ev::Ping));
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((t2.as_nanos(), e2), (10, Ev::Pong));
//! assert!(q.pop().is_none());
//! ```
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling, which makes simulations deterministic without requiring
//! payloads to be `Ord`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
///
/// The queue enforces causality: an event may never be scheduled before the
/// timestamp of the most recently popped event (the current simulation
/// time). Violations indicate a simulator bug and panic immediately rather
/// than silently reordering history.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            scheduled: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for reporting).
    #[inline]
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events ever popped (for reporting).
    #[inline]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned past event");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.payload))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("scheduled", &self.scheduled)
            .field("popped", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.schedule(SimTime::from_nanos(10), ());
        q.schedule(SimTime::from_nanos(25), ());
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), SimTime::from_nanos(25));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "first");
        q.pop();
        q.schedule_after(SimTime::from_nanos(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
