//! Statistics collection for simulators.
//!
//! Two building blocks cover everything the paper's evaluation needs:
//!
//! * [`BusyTracker`] — measures the fraction of virtual time a resource
//!   (a flash channel, the NPU, the DRAM bus) spends busy. This is what
//!   "Channel Usage" in Figures 12, 14 and 15 reports.
//! * [`Counter`] — monotone byte/op/request counters used for the data
//!   transfer accounting in Figure 16.

use crate::time::SimTime;

/// The approved f64 reduction: a strict left-to-right fold.
///
/// Floating-point addition is not associative, so any reduction whose
/// order can vary (rayon-style tree sums, hash-map iteration) produces
/// run-to-run drift in the last ulps — enough to break bit-exact golden
/// reports. This helper pins the order. It is bit-identical to
/// `iter().sum::<f64>()` (std's `Sum` for `f64` is exactly
/// `fold(0.0, Add::add)`), but spelling it `sum_ordered` makes the
/// ordering contract visible at the call site and gives the simlint D3
/// rule a single sanctioned home for float accumulation.
pub fn sum_ordered<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    xs.into_iter().fold(0.0, |acc, x| acc + x)
}

/// Tracks the total busy time of a single resource.
///
/// Busy intervals are reported by the simulator as they are *retired*
/// (i.e., after the fact), so overlapping bookkeeping errors are caught:
/// intervals must be non-overlapping and non-decreasing in start time.
///
/// # Examples
///
/// ```
/// use sim_core::{BusyTracker, SimTime};
///
/// let mut ch = BusyTracker::new();
/// ch.add_interval(SimTime::from_nanos(0), SimTime::from_nanos(30));
/// ch.add_interval(SimTime::from_nanos(50), SimTime::from_nanos(70));
/// assert_eq!(ch.busy_time(), SimTime::from_nanos(50));
/// assert!((ch.utilization(SimTime::from_nanos(100)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    busy: SimTime,
    last_end: SimTime,
    intervals: u64,
}

impl BusyTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or the interval overlaps a previously
    /// recorded one (i.e. `start < last_end`).
    #[inline]
    pub fn add_interval(&mut self, start: SimTime, end: SimTime) {
        assert!(end >= start, "interval ends before it starts");
        assert!(
            start >= self.last_end,
            "overlapping busy interval: starts at {start}, previous ended {}",
            self.last_end
        );
        self.busy += end - start;
        self.last_end = end;
        self.intervals += 1;
    }

    /// Records a busy interval of `duration` starting at `start`.
    pub fn add_busy(&mut self, start: SimTime, duration: SimTime) {
        self.add_interval(start, start + duration);
    }

    /// Records `k` back-to-back intervals jointly spanning `[start,
    /// end)` in one update. State afterwards is identical to `k`
    /// chained [`BusyTracker::add_interval`] calls covering the span —
    /// callers batching a gapless run of intervals use this to skip the
    /// per-interval bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics like `add_interval` on a backwards or overlapping span,
    /// or if a non-empty span claims zero intervals.
    #[inline]
    pub fn add_contiguous(&mut self, start: SimTime, end: SimTime, k: u64) {
        assert!(end >= start, "interval ends before it starts");
        assert!(
            start >= self.last_end,
            "overlapping busy interval: starts at {start}, previous ended {}",
            self.last_end
        );
        assert!(k > 0 || end == start, "non-empty span needs intervals");
        self.busy += end - start;
        self.last_end = end;
        self.intervals += k;
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// End of the most recent busy interval.
    pub fn last_end(&self) -> SimTime {
        self.last_end
    }

    /// Number of recorded intervals.
    pub fn interval_count(&self) -> u64 {
        self.intervals
    }

    /// Busy fraction over `[0, horizon)`. Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_picos() as f64 / horizon.as_picos() as f64
    }
}

/// Hit/miss counters for a memoization cache (the GeMV cache and the
/// op-cost cache in the system simulator both report through this).
///
/// A *hit* is a lookup served from memory; a *miss* is a lookup that had
/// to run the underlying computation. The split is what serving reports
/// surface to show how much work the fleet shares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    hits: u64,
    misses: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one lookup served from memory.
    #[inline]
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records one lookup that ran the underlying computation.
    #[inline]
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Lookups served from memory.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the underlying computation.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lookups observed.
    #[inline]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from memory (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups() as f64
    }

    /// Zeroes both counters, keeping the cache contents they described.
    ///
    /// Used when a pre-warmed memo cache is handed to a fresh
    /// measurement run: the entries stay (that is the point of
    /// warming), but the lookups that created them should not leak into
    /// the new run's report.
    #[inline]
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A labelled monotone counter (bytes moved, requests served, ops run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value = self
            .value
            .checked_add(n)
            .expect("counter overflow — check units");
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Running mean/min/max aggregate over `f64` samples, used for
/// summarising per-channel utilizations and per-request latencies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Aggregate {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A full sample set with order statistics, for latency distributions
/// (p50/p99 token latency in serving reports).
///
/// Unlike [`Aggregate`], which keeps O(1) state, `Samples` retains every
/// pushed value so exact percentiles can be computed. Sorting happens
/// lazily on the first percentile query after a push.
///
/// # Examples
///
/// ```
/// use sim_core::Samples;
///
/// let mut s = Samples::new();
/// for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.percentile(50.0), Some(3.0));
/// assert_eq!(s.percentile(0.0), Some(1.0));
/// assert_eq!(s.percentile(100.0), Some(5.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Mean of samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.values.is_empty())
            .then(|| sum_ordered(self.values.iter().copied()) / self.values.len() as f64)
    }

    /// The `p`-th percentile (`0.0..=100.0`) by nearest-rank, or `None`
    /// if empty.
    ///
    /// Samples are ordered by [`f64::total_cmp`] (IEEE 754 total
    /// order), so a stray NaN sample cannot panic a report: positive
    /// NaNs sort above `+inf`, negative NaNs below `-inf`, and every
    /// ordinary value keeps its usual rank.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        // Nearest-rank: ceil(p/100 * n), clamped to [1, n].
        let n = self.values.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(self.values[rank - 1])
    }

    /// Collapses to the O(1) summary form.
    pub fn aggregate(&self) -> Aggregate {
        self.values.iter().copied().collect()
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

/// A mean with dispersion: sample count, mean, sample standard
/// deviation, and a 95% confidence half-width for the mean.
///
/// This is what a Monte Carlo harness reports per metric: run the same
/// scenario over N decorrelated seeds, collect one scalar per seed
/// (throughput, TTFT p99, ...), and summarise the spread. The CI uses
/// the normal approximation (`1.96 · s/√n`), which is the standard
/// reporting convention for simulation batches of this size; for very
/// small N it understates slightly versus Student's t.
///
/// # Examples
///
/// ```
/// use sim_core::Estimate;
///
/// let e = Estimate::from_samples(&[10.0, 12.0, 11.0, 13.0]);
/// assert_eq!(e.n, 4);
/// assert!((e.mean - 11.5).abs() < 1e-12);
/// assert!(e.ci95 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Estimate {
    /// Number of samples.
    pub n: u64,
    /// Sample mean (0 when empty).
    pub mean: f64,
    /// Sample standard deviation, Bessel-corrected (0 when n < 2).
    pub stddev: f64,
    /// 95% confidence half-width for the mean: `1.96 · stddev / √n`
    /// (0 when n < 2).
    pub ci95: f64,
}

impl Estimate {
    /// Summarises a slice of samples. Summation is left-to-right in
    /// slice order, so the result is deterministic for a given input
    /// ordering.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len() as u64;
        if n == 0 {
            return Self::default();
        }
        let mean = sum_ordered(samples.iter().copied()) / n as f64;
        if n < 2 {
            return Estimate {
                n,
                mean,
                stddev: 0.0,
                ci95: 0.0,
            };
        }
        let var = sum_ordered(samples.iter().map(|x| (x - mean) * (x - mean))) / (n - 1) as f64;
        let stddev = var.sqrt();
        Estimate {
            n,
            mean,
            stddev,
            ci95: 1.96 * stddev / (n as f64).sqrt(),
        }
    }
}

impl Extend<f64> for Aggregate {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Aggregate {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut agg = Aggregate::new();
        agg.extend(iter);
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tracker_accumulates() {
        let mut t = BusyTracker::new();
        t.add_interval(SimTime::from_nanos(10), SimTime::from_nanos(20));
        t.add_interval(SimTime::from_nanos(20), SimTime::from_nanos(25));
        assert_eq!(t.busy_time(), SimTime::from_nanos(15));
        assert_eq!(t.interval_count(), 2);
        assert_eq!(t.last_end(), SimTime::from_nanos(25));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn busy_tracker_rejects_overlap() {
        let mut t = BusyTracker::new();
        t.add_interval(SimTime::from_nanos(10), SimTime::from_nanos(20));
        t.add_interval(SimTime::from_nanos(15), SimTime::from_nanos(30));
    }

    #[test]
    fn utilization_bounds() {
        let mut t = BusyTracker::new();
        t.add_interval(SimTime::ZERO, SimTime::from_nanos(100));
        assert!((t.utilization(SimTime::from_nanos(100)) - 1.0).abs() < 1e-12);
        assert_eq!(BusyTracker::new().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn cache_stats_track_hits_and_misses() {
        let mut c = CacheStats::new();
        assert_eq!(c.hit_rate(), 0.0);
        c.miss();
        c.hit();
        c.hit();
        c.hit();
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.lookups(), 4);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn counter_adds() {
        let mut c = Counter::new();
        c.add(16 * 1024);
        c.incr();
        assert_eq!(c.get(), 16 * 1024 + 1);
    }

    #[test]
    fn aggregate_stats() {
        let agg: Aggregate = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(agg.count(), 3);
        assert_eq!(agg.mean(), Some(2.0));
        assert_eq!(agg.min(), Some(1.0));
        assert_eq!(agg.max(), Some(3.0));
    }

    #[test]
    fn samples_percentiles_nearest_rank() {
        let mut s: Samples = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(99.0), Some(99.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(1.0), Some(1.0));
        assert_eq!(s.mean(), Some(50.5));
        assert_eq!(s.count(), 100);
        let agg = s.aggregate();
        assert_eq!(agg.min(), Some(1.0));
        assert_eq!(agg.max(), Some(100.0));
    }

    #[test]
    fn nan_samples_sort_by_total_order_instead_of_panicking() {
        // Regression pin: the old `partial_cmp().expect("NaN sample")`
        // comparator panicked the whole report on one bad sample.
        // total_cmp places positive NaN above +inf and negative NaN
        // below -inf, leaving ordinary ranks untouched.
        let mut s: Samples = [2.0, f64::NAN, 1.0, 3.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(2.0));
        assert!(s.percentile(100.0).unwrap().is_nan());
        let mut neg: Samples = [1.0, -f64::NAN, 2.0].into_iter().collect();
        assert!(neg.percentile(0.0).unwrap().is_nan());
        assert_eq!(neg.percentile(100.0), Some(2.0));
    }

    #[test]
    fn empty_samples_are_none() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn estimate_mean_stddev_ci() {
        let e = Estimate::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(e.n, 8);
        assert!((e.mean - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        let expected_sd = (32.0f64 / 7.0).sqrt();
        assert!((e.stddev - expected_sd).abs() < 1e-12);
        assert!((e.ci95 - 1.96 * expected_sd / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn estimate_degenerate_sizes() {
        let empty = Estimate::from_samples(&[]);
        assert_eq!(empty, Estimate::default());
        let one = Estimate::from_samples(&[3.5]);
        assert_eq!(one.n, 1);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.stddev, 0.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn estimate_constant_samples_have_zero_spread() {
        let e = Estimate::from_samples(&[7.0; 16]);
        assert_eq!(e.mean, 7.0);
        assert_eq!(e.stddev, 0.0);
        assert_eq!(e.ci95, 0.0);
    }

    #[test]
    fn cache_stats_reset_zeroes_counters() {
        let mut c = CacheStats::new();
        c.hit();
        c.miss();
        c.reset();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.lookups(), 0);
    }

    #[test]
    fn empty_aggregate_is_none() {
        let agg = Aggregate::new();
        assert_eq!(agg.mean(), None);
        assert_eq!(agg.min(), None);
        assert_eq!(agg.max(), None);
    }
}
