//! A small deterministic RNG for simulations.
//!
//! Simulation results must be exactly reproducible from a seed, across
//! platforms and crate versions, because `EXPERIMENTS.md` records concrete
//! numbers. We therefore pin the generator algorithm in-repo rather than
//! relying on `rand`'s unspecified `StdRng` (which may change between
//! releases). The generator is SplitMix64 — tiny, fast, and statistically
//! sound for Monte-Carlo error injection at the rates we use (down to
//! 1e-6 per bit over multi-megabyte pages).
//!
//! Workload-level code that wants distributions still uses the `rand`
//! crate; this type exists for the hot inner loops of bit-flip injection
//! and for cases where algorithm stability is part of the contract.

/// Deterministic SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use sim_core::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Multiply-shift; bias is negligible for our bounds (< 2^40).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples from a geometric distribution: the number of failures
    /// before the first success with success probability `p`.
    ///
    /// Used to skip directly between rare bit flips instead of testing
    /// every bit: injecting errors at BER 1e-6 over a 16 KiB page means
    /// ~0.13 expected flips, so skip-sampling is thousands of times
    /// faster than per-bit Bernoulli trials.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric requires 0 < p <= 1");
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Binomial sample: successes in `n` trials at probability `p`.
    ///
    /// This is the page-granularity fault sampler: a decode span reads
    /// millions of flash pages, each failing ECC independently with a
    /// tiny probability, and we need the count without a per-page loop.
    /// Two regimes, both deterministic from the generator state:
    ///
    /// - mean `n·p <= 64`: geometric skip-sampling between successes,
    ///   O(successes) draws — the common case for rare faults;
    /// - larger means: normal approximation (mean `np`, variance
    ///   `np(1-p)`), rounded and clamped to `[0, n]`. At `np > 64` the
    ///   relative error of the approximation is far below the
    ///   run-to-run spread we are modeling.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let mean = n as f64 * p;
        if mean <= 64.0 {
            let mut successes = 0u64;
            let mut i = self.geometric(p);
            while i < n {
                successes += 1;
                i = i.saturating_add(1 + self.geometric(p));
            }
            successes
        } else {
            let sd = (mean * (1.0 - p)).sqrt();
            let x = mean + sd * self.normal();
            (x.round().max(0.0) as u64).min(n)
        }
    }

    /// Standard normal sample (Box–Muller; one value per call).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Derives an independent child generator (for per-page streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Derives `n` decorrelated stream seeds from a root seed.
    ///
    /// This is the seed-hygiene primitive for Monte Carlo fan-out: each
    /// returned seed is a successive output of a root-seeded generator,
    /// so the derived streams start from well-mixed, pairwise-unrelated
    /// states. Naive `root + i` seeding would hand SplitMix64 adjacent
    /// states, which by construction walk the *same* underlying sequence
    /// offset by one step — stream `i+1` is stream `i` shifted, i.e.
    /// maximally correlated. Mixing through `next_u64` breaks that.
    ///
    /// The same root always yields the same seed vector, so a whole
    /// Monte Carlo batch is reproducible from one number.
    pub fn split_seeds(root: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(root);
        (0..n).map(|_| rng.next_u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = SplitMix64::new(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn geometric_mean_close_to_theory() {
        let mut rng = SplitMix64::new(6);
        let p = 0.01;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p; // 99
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SplitMix64::new(10);
        assert_eq!(rng.binomial(0, 0.5), 0);
        assert_eq!(rng.binomial(100, 0.0), 0);
        assert_eq!(rng.binomial(100, -0.5), 0);
        assert_eq!(rng.binomial(100, 1.0), 100);
        assert_eq!(rng.binomial(100, 2.0), 100);
        for _ in 0..1000 {
            assert!(rng.binomial(10, 0.5) <= 10);
        }
    }

    #[test]
    fn binomial_mean_matches_theory_in_both_regimes() {
        // Skip-sampling regime (np = 0.8) and normal regime (np = 5e4).
        for (n, p) in [(80u64, 0.01), (100_000u64, 0.5)] {
            let mut rng = SplitMix64::new(11);
            let trials = 20_000;
            let total: u64 = (0..trials).map(|_| rng.binomial(n, p)).sum();
            let mean = total as f64 / trials as f64;
            let expected = n as f64 * p;
            let sd = (expected * (1.0 - p)).sqrt();
            // Mean of `trials` samples has stddev sd/sqrt(trials); 5
            // sigma keeps this deterministic-seed test robust.
            assert!(
                (mean - expected).abs() < 5.0 * sd / (trials as f64).sqrt(),
                "n {n} p {p}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn binomial_deterministic_for_same_state() {
        let mut a = SplitMix64::new(12);
        let mut b = SplitMix64::new(12);
        for _ in 0..100 {
            assert_eq!(a.binomial(1_000_000, 1e-5), b.binomial(1_000_000, 1e-5));
        }
    }

    #[test]
    fn normal_mean_and_var() {
        let mut rng = SplitMix64::new(8);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn split_seeds_reproducible_and_distinct() {
        let a = SplitMix64::split_seeds(0xC0FFEE, 16);
        let b = SplitMix64::split_seeds(0xC0FFEE, 16);
        assert_eq!(a, b, "same root must reproduce the seed vector");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "derived seeds must be distinct");
        let c = SplitMix64::split_seeds(0xC0FFEF, 16);
        assert_ne!(a, c, "different roots must give different streams");
    }

    #[test]
    fn split_seeds_are_not_adjacent_states() {
        // The failure mode split_seeds exists to prevent: `root + i`
        // seeding makes stream i+1 a one-step shift of stream i.
        let seeds = SplitMix64::split_seeds(42, 4);
        for w in seeds.windows(2) {
            assert_ne!(w[1], w[0].wrapping_add(1), "adjacent raw states");
            // Stream from seed w[0], advanced one step, must not equal
            // the stream from seed w[1].
            let mut x = SplitMix64::new(w[0]);
            x.next_u64();
            let shifted = x.next_u64();
            let mut y = SplitMix64::new(w[1]);
            assert_ne!(y.next_u64(), shifted);
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SplitMix64::new(9);
        let mut child = parent.fork();
        // Child continues deterministically.
        let c1 = child.next_u64();
        let mut parent2 = SplitMix64::new(9);
        let mut child2 = parent2.fork();
        assert_eq!(c1, child2.next_u64());
    }
}
