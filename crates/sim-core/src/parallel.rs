//! Deterministic parallel map over independent work items.
//!
//! Several layers of the simulator fan embarrassingly parallel work
//! across cores: design-space sweeps evaluate independent hardware
//! points, and the Monte Carlo serving harness runs independent seeded
//! scenarios. Both need the *same* guarantee — results identical to
//! sequential evaluation, in item order, regardless of how threads are
//! scheduled — so the pattern lives here once instead of being
//! hand-rolled per call site.
//!
//! The implementation is rayon-style `par_iter` on
//! [`std::thread::scope`] (the build environment is offline and cannot
//! vendor rayon): workers claim items off a shared atomic counter and
//! write each result into the item's pre-assigned output slot. Output
//! order is therefore positional, never completion-ordered, and a run
//! with one worker is bit-identical to a run with many.
//!
//! # Examples
//!
//! ```
//! use sim_core::parallel_map;
//!
//! let squares = parallel_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` in parallel on up to
/// [`std::thread::available_parallelism`] scoped threads, returning
/// results in item order. `f` receives `(index, &item)` so callers can
/// key per-item state (seeds, labels) off the position.
///
/// Equivalent to `items.iter().enumerate().map(...).collect()` — the
/// thread pool changes wall-clock time only, never the result.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    parallel_map_workers(items, workers, f)
}

/// [`parallel_map`] with an explicit worker count (at least 1 is
/// spawned; more workers than items is clamped). Exposed so callers
/// can pin determinism tests to specific thread counts.
pub fn parallel_map_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        // Inline fast path: nothing to coordinate. Identical results by
        // construction — the threaded path below writes positionally.
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                // Work outside the lock; only the slot write is
                // serialized.
                let result = f(i, item);
                slots.lock().expect("parallel_map worker panicked")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("parallel_map worker panicked")
        .into_iter()
        .map(|r| r.expect("every item evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..57).collect();
        let seq = parallel_map_workers(&items, 1, |i, &x| x.wrapping_mul(i as u64 + 3));
        for workers in [2, 4, 16] {
            let par = parallel_map_workers(&items, workers, |i, &x| x.wrapping_mul(i as u64 + 3));
            assert_eq!(par, seq, "{workers} workers");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = parallel_map_workers(&[1u32, 2], 64, |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(parallel_map_workers(&[5u32], 0, |_, &x| x), vec![5]);
    }
}
