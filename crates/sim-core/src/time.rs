//! Simulation time.
//!
//! All simulators in this workspace share a single notion of virtual time:
//! an unsigned number of **picoseconds** since simulation start. Picosecond
//! resolution lets us express both sub-nanosecond bus beats (a 1000 MT/s,
//! 8-bit flash channel moves one byte per nanosecond) and long NAND array
//! operations (tens of microseconds) without rounding error, while a `u64`
//! still covers more than 200 days of virtual time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time or a duration, measured in picoseconds.
///
/// `SimTime` is deliberately a single type for both instants and durations;
/// discrete-event simulators overwhelmingly mix the two (`now + latency`)
/// and a two-type scheme adds friction without catching real bugs at this
/// scale.
///
/// # Examples
///
/// ```
/// use sim_core::SimTime;
///
/// let t_r = SimTime::from_micros(30);
/// let beat = SimTime::from_nanos(1);
/// assert_eq!(t_r / beat, 30_000);
/// assert_eq!(t_r + beat, SimTime::from_picos(30_001_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant / zero-length duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Creates a time from a floating-point number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        let ps = secs * 1e12;
        assert!(ps <= u64::MAX as f64, "SimTime overflow: {secs} s");
        SimTime(ps as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// This time expressed in (truncated) nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// This time expressed in (truncated) microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This time expressed in floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Multiplies a duration by an integer count.
    #[inline]
    pub const fn times(self, n: u64) -> SimTime {
        SimTime(self.0 * n)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflow"),
        )
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

/// Dividing two times yields the dimensionless ratio (truncated).
impl Div for SimTime {
    type Output = u64;
    #[inline]
    fn div(self, rhs: SimTime) -> u64 {
        assert!(rhs.0 != 0, "division by zero SimTime");
        self.0 / rhs.0
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

/// Computes the time to move `bytes` bytes over a link of
/// `bytes_per_second` bandwidth, rounding up to the next picosecond.
///
/// # Panics
///
/// Panics if `bytes_per_second` is zero.
///
/// # Examples
///
/// ```
/// use sim_core::time::transfer_time;
/// // 16 KiB over a 1 GB/s flash channel takes 16.384 us.
/// let t = transfer_time(16 * 1024, 1_000_000_000);
/// assert_eq!(t.as_nanos(), 16_384);
/// ```
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_second: u64) -> SimTime {
    assert!(bytes_per_second > 0, "zero bandwidth");
    // ps = bytes * 1e12 / B/s, computed in u128 to avoid overflow.
    let ps = (bytes as u128 * 1_000_000_000_000u128).div_ceil(bytes_per_second as u128);
    SimTime::from_picos(ps as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_nanos(1).as_picos(), 1_000);
        assert_eq!(SimTime::from_micros(1).as_picos(), 1_000_000);
        assert_eq!(SimTime::from_millis(1).as_picos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_picos(), 1_000_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimTime::from_micros(30);
        let b = SimTime::from_nanos(500);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * 2, SimTime::from_micros(60));
        assert_eq!(a / 2, SimTime::from_micros(15));
    }

    #[test]
    fn ratio_division() {
        assert_eq!(SimTime::from_micros(30) / SimTime::from_micros(10), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            SimTime::from_nanos(1).saturating_sub(SimTime::from_nanos(2)),
            SimTime::ZERO
        );
    }

    #[test]
    fn from_secs_f64_matches_integer_path() {
        assert_eq!(SimTime::from_secs_f64(0.000_03), SimTime::from_micros(30));
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn transfer_time_basic() {
        // 1 byte at 1 GB/s = 1 ns.
        assert_eq!(transfer_time(1, 1_000_000_000), SimTime::from_nanos(1));
        // Rounds up.
        assert_eq!(transfer_time(1, 3_000_000_000_000).as_picos(), 1);
        assert_eq!(transfer_time(0, 1), SimTime::ZERO);
    }

    #[test]
    fn transfer_time_large_values_no_overflow() {
        // 70 GB at 40 GB/s = 1.75 s.
        let t = transfer_time(70_000_000_000, 40_000_000_000);
        assert!((t.as_secs_f64() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_picos(12).to_string(), "12ps");
        assert_eq!(SimTime::from_micros(30).to_string(), "30.000us");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }
}
