//! # sim-core — discrete-event simulation substrate
//!
//! Shared simulation kernel for the Cambricon-LLM reproduction. The paper
//! evaluates its architecture on SSDsim (a C discrete-event flash
//! simulator) plus a cycle-accurate NPU model; this crate provides the
//! equivalent substrate in Rust:
//!
//! * [`SimTime`] — picosecond-resolution virtual time,
//! * [`EventQueue`] — a deterministic time-ordered event queue,
//! * [`Component`] / [`Scheduler`] — uniform simulation participants
//!   composed under one global clock with `(time, seq)` FIFO firing,
//! * [`BusyTracker`] / [`Counter`] / [`Aggregate`] — the statistics the
//!   paper's figures report (channel utilization, bytes moved),
//! * [`SplitMix64`] — a pinned, reproducible RNG for error injection.
//!
//! Higher-level crates (`flash-sim`, `npu-sim`, `cambricon-llm`) build the
//! actual device models on top of these primitives.
//!
//! ## Example
//!
//! ```
//! use sim_core::{EventQueue, SimTime, BusyTracker};
//!
//! // A toy simulator: one resource serving three 10ns jobs back-to-back.
//! let mut q = EventQueue::new();
//! let mut busy = BusyTracker::new();
//! let mut free_at = SimTime::ZERO;
//! for job in 0..3u32 {
//!     let start = free_at;
//!     let end = start + SimTime::from_nanos(10);
//!     q.schedule(end, job);
//!     busy.add_interval(start, end);
//!     free_at = end;
//! }
//! while q.pop().is_some() {}
//! assert_eq!(q.now(), SimTime::from_nanos(30));
//! assert!((busy.utilization(q.now()) - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod component;
pub mod event;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod time;

pub use component::{Component, Firing, Scheduler};
pub use event::EventQueue;
pub use parallel::{parallel_map, parallel_map_workers};
pub use rng::SplitMix64;
pub use stats::{sum_ordered, Aggregate, BusyTracker, CacheStats, Counter, Estimate, Samples};
pub use time::{transfer_time, SimTime};
