//! The lint engine: file discovery, per-file context (crate, test
//! regions), rule dispatch, and pragma suppression accounting.

use crate::diagnostics::{self, Diagnostic};
use crate::lexer::{self, Tok, TokKind};
use crate::pragma;
use crate::rules;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file prepared for rule matching.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The `crates/<dir>` component ("core", "sim-core", ...), or
    /// "root" for the umbrella crate's own sources.
    pub crate_dir: String,
    /// Whether the file lives under a `tests/` directory (integration
    /// tests: scoped rules skip the whole file).
    pub is_test_file: bool,
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
}

impl FileCtx {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// Whether the token stream is empty.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// Identifier text at `i`, if `i` is an identifier.
    pub fn id(&self, i: usize) -> Option<&str> {
        self.toks
            .get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }

    /// Punctuation char at `i`, if `i` is punctuation.
    pub fn punct(&self, i: usize) -> Option<char> {
        self.toks
            .get(i)
            .filter(|t| t.kind == TokKind::Punct)
            .and_then(|t| t.text.chars().next())
    }

    /// Numeric literal text at `i`, if `i` is a number.
    pub fn num(&self, i: usize) -> Option<&str> {
        self.toks
            .get(i)
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
    }

    /// Raw token text at `i` (empty past the end).
    pub fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    /// `::` at positions `i`, `i + 1`.
    pub fn colons(&self, i: usize) -> bool {
        self.punct(i) == Some(':') && self.punct(i + 1) == Some(':')
    }

    /// 1-based line of token `i` (0 past the end; rules only call this
    /// for matched positions).
    pub fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Whether token `i` is live, non-test code. Scoped rules skip
    /// test regions: test code does not sit on the replay path, and
    /// seeded constructions there are the point of the tests.
    pub fn live(&self, i: usize) -> bool {
        !self.is_test_file && !self.in_test.get(i).copied().unwrap_or(false)
    }
}

/// Marks every token inside an item carrying `#[test]` or a
/// `#[cfg(...)]` attribute that mentions `test` (without `not`). The
/// item's extent is taken as the brace block that follows the
/// attribute; a `;` at bracket depth 0 before any `{` ends a bodyless
/// item.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut flag = vec![false; toks.len()];
    let mut depth: u32 = 0;
    let mut paren_depth: u32 = 0;
    let mut region_stack: Vec<u32> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < toks.len() {
        // Attribute: `#[...]` or `#![...]`.
        if is_punct(toks, i, '#') {
            let mut k = i + 1;
            if is_punct(toks, k, '!') {
                k += 1;
            }
            if is_punct(toks, k, '[') {
                let mut bd: u32 = 1;
                let mut j = k + 1;
                let mut has_test = false;
                let mut has_not = false;
                while j < toks.len() && bd > 0 {
                    if is_punct(toks, j, '[') {
                        bd += 1;
                    } else if is_punct(toks, j, ']') {
                        bd -= 1;
                    } else if toks[j].kind == TokKind::Ident {
                        match toks[j].text.as_str() {
                            "test" => has_test = true,
                            "not" => has_not = true,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if has_test && !has_not {
                    pending = true;
                }
                let inside = !region_stack.is_empty();
                for f in flag.iter_mut().take(j).skip(i) {
                    *f = inside;
                }
                i = j;
                continue;
            }
        }
        flag[i] = !region_stack.is_empty();
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                if pending {
                    region_stack.push(depth);
                    pending = false;
                    flag[i] = true;
                }
            }
            (TokKind::Punct, "}") => {
                if region_stack.last() == Some(&depth) {
                    region_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => paren_depth += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                paren_depth = paren_depth.saturating_sub(1);
            }
            (TokKind::Punct, ";") if paren_depth == 0 => {
                pending = false;
            }
            _ => {}
        }
        i += 1;
    }
    flag
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text.starts_with(c))
}

fn crate_dir_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
        .to_string()
}

/// Lints one file's source as if it lived at `rel`, returning the
/// post-suppression diagnostics (including pragma hygiene findings).
/// This is the whole per-file pipeline; `--fixtures` and the tests
/// call it with pretend paths.
pub fn analyze(rel: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let (pragmas, _markers) = pragma::extract(&lexed);
    let in_test = test_regions(&lexed.toks);
    let ctx = FileCtx {
        rel: rel.to_string(),
        crate_dir: crate_dir_of(rel),
        is_test_file: rel.split('/').any(|c| c == "tests"),
        toks: lexed.toks,
        in_test,
    };

    let mut diags = Vec::new();
    rules::check_file(&ctx, &mut diags);

    // Suppression: a well-formed pragma covering (rule, line) consumes
    // the diagnostic and marks itself used.
    let mut used = vec![false; pragmas.len()];
    diags.retain(|d| {
        let hit = pragmas.iter().position(|p| {
            p.problem.is_none() && p.applies_to == d.line && p.rules.iter().any(|r| r == d.rule)
        });
        match hit {
            Some(pi) => {
                used[pi] = true;
                false
            }
            None => true,
        }
    });

    // Pragma hygiene.
    for (p, was_used) in pragmas.iter().zip(&used) {
        if let Some(problem) = &p.problem {
            diags.push(Diagnostic::new(
                "P0",
                rel,
                p.line,
                format!("malformed pragma: {problem}"),
            ));
        } else if !was_used {
            diags.push(Diagnostic::new(
                "P1",
                rel,
                p.line,
                format!(
                    "unused pragma `allow({})`: it suppresses nothing on line {} — remove it",
                    p.rules.join(", "),
                    p.applies_to
                ),
            ));
        }
    }

    diagnostics::sort_dedup(&mut diags);
    diags
}

/// A whole-workspace lint result.
#[derive(Debug)]
pub struct Report {
    /// All findings, canonically ordered.
    pub diags: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints every non-vendor workspace source tree under `root`: the
/// umbrella crate's `src/` and `tests/`, and each `crates/*`'s `src/`
/// and `tests/`. `vendor/` (third-party shims), `examples/`, and
/// `benches/` are out of scope by construction.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    collect_tree(root, "src", &mut files)?;
    collect_tree(root, "tests", &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in &members {
            let Some(name) = m.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            collect_tree(root, &format!("crates/{name}/src"), &mut files)?;
            collect_tree(root, &format!("crates/{name}/tests"), &mut files)?;
        }
    }
    files.sort();

    let mut diags = Vec::new();
    let files_scanned = files.len();
    for (rel, path) in &files {
        let bytes = fs::read(path)?;
        let src = String::from_utf8_lossy(&bytes);
        diags.extend(analyze(rel, &src));
    }
    diagnostics::sort_dedup(&mut diags);
    Ok(Report {
        diags,
        files_scanned,
    })
}

/// Collects `.rs` files under `root/sub`, recursively, sorted.
fn collect_tree(root: &Path, sub: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let dir = root.join(sub);
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if p.is_dir() {
            collect_tree(root, &format!("{sub}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push((format!("{sub}/{name}"), p));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flags(src: &str) -> Vec<(String, bool)> {
        let lexed = lex(src);
        let flags = test_regions(&lexed.toks);
        lexed
            .toks
            .into_iter()
            .zip(flags)
            .map(|(t, f)| (t.text, f))
            .collect()
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn inner() { covered(); }\n}\nfn after() {}";
        let flags = test_flags(src);
        let of = |name: &str| flags.iter().find(|(t, _)| t == name).unwrap().1;
        assert!(!of("live"));
        assert!(of("inner"));
        assert!(of("covered"));
        assert!(!of("after"));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let flags = test_flags("#[cfg(not(test))]\nfn shipped() { body(); }");
        assert!(flags.iter().all(|(_, f)| !f));
    }

    #[test]
    fn test_attr_on_fn_is_marked_and_semicolon_items_are_not_sticky() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x(); }\n#[test]\nfn t() { y(); }";
        let flags = test_flags(src);
        let of = |name: &str| flags.iter().find(|(t, _)| t == name).unwrap().1;
        assert!(!of("live"));
        assert!(!of("x"));
        assert!(of("y"));
    }

    #[test]
    fn semicolons_inside_brackets_do_not_clear_pending() {
        let src = "#[cfg(test)]\nfn t(a: [u8; 3]) { inner(); }\nfn live() {}";
        let flags = test_flags(src);
        let of = |name: &str| flags.iter().find(|(t, _)| t == name).unwrap().1;
        assert!(of("inner"));
        assert!(!of("live"));
    }

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(crate_dir_of("crates/sim-core/src/rng.rs"), "sim-core");
        assert_eq!(crate_dir_of("src/lib.rs"), "root");
        assert_eq!(crate_dir_of("tests/serving.rs"), "root");
    }
}
