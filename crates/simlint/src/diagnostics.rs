//! Diagnostic type and the two output formats (human, `--json`).
//!
//! Output is deterministic: diagnostics are sorted by
//! `(file, line, rule, message)` and files are discovered in sorted
//! order, so two runs over the same tree are byte-identical — the lint
//! holds itself to the invariant it enforces.

/// One finding at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D1`..`D5`, `P0`, `P1`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// One-line explanation, including the matched snippet.
    pub msg: String,
}

impl Diagnostic {
    /// Builds a finding.
    pub fn new(rule: &'static str, file: &str, line: u32, msg: String) -> Self {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            msg,
        }
    }
}

/// Sorts into the canonical order and drops exact duplicates (two
/// trigger patterns of one rule can overlap on a line).
pub fn sort_dedup(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| (&a.file, a.line, a.rule, &a.msg).cmp(&(&b.file, b.line, b.rule, &b.msg)));
    diags.dedup();
}

/// Renders the human-readable report.
pub fn human(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}:{}: [{}] {}\n", d.file, d.line, d.rule, d.msg));
    }
    if diags.is_empty() {
        out.push_str(&format!(
            "simlint: clean — {files_scanned} files, 0 findings\n"
        ));
    } else {
        out.push_str(&format!(
            "simlint: {} finding(s) in {} files scanned\n",
            diags.len(),
            files_scanned
        ));
    }
    out
}

/// Renders the `--json` report (stable field order, 2-space indent).
pub fn json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"clean\": {},\n", diags.is_empty()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(d.rule),
            escape(&d.file),
            d.line,
            escape(&d.msg)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_dedup() {
        let mut v = vec![
            Diagnostic::new("D2", "b.rs", 3, "x".into()),
            Diagnostic::new("D1", "a.rs", 9, "y".into()),
            Diagnostic::new("D1", "a.rs", 9, "y".into()),
        ];
        sort_dedup(&mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].file, "a.rs");
    }

    #[test]
    fn json_escapes_and_is_parseable_shape() {
        let v = vec![Diagnostic::new("D2", "a\"b.rs", 1, "say \"hi\"\n".into())];
        let j = json(&v, 1);
        assert!(j.contains("\\\"hi\\\"\\n"));
        assert!(j.contains("\"clean\": false"));
    }
}
