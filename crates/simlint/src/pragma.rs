//! Inline suppression pragmas and fixture expectation markers.
//!
//! A violation that is *intended* carries a line pragma with a
//! mandatory reason:
//!
//! ```text
//! // simlint: allow(D2) — lookup-only memo; no iteration, hash order can't reach a report
//! map: std::collections::HashMap<K, V>,
//! ```
//!
//! A trailing pragma (`code // simlint: allow(...) — why`) covers its
//! own line; a standalone pragma comment covers the next line holding
//! code. There are deliberately no file- or module-level suppressions:
//! every exception is visible at the line it excuses, and a pragma
//! that excuses nothing is itself a finding ([`crate::rules`] P1), so
//! suppressions cannot outlive the code they were written for.
//!
//! Fixture files additionally use `//~ D2` markers (same anchoring
//! rules) to declare where a rule is expected to fire; markers are
//! ignored outside the `--fixtures` self-test.

use crate::lexer::Lexed;
use std::collections::BTreeSet;

/// One parsed `simlint: allow(...)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line of the pragma comment itself.
    pub line: u32,
    /// Line whose diagnostics the pragma suppresses.
    pub applies_to: u32,
    /// Rule ids the pragma names (possibly empty when malformed).
    pub rules: Vec<String>,
    /// `Some(problem)` when the pragma is malformed; such pragmas
    /// suppress nothing and surface as a P0 finding.
    pub problem: Option<String>,
}

/// One fixture expectation marker (`//~ D2`).
#[derive(Debug, Clone)]
pub struct Marker {
    /// Line the marked rule must fire on.
    pub line: u32,
    /// The expected rule id.
    pub rule: String,
}

/// Extracts pragmas and fixture markers from a lexed file.
pub fn extract(lexed: &Lexed) -> (Vec<Pragma>, Vec<Marker>) {
    let code_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let anchor = |line: u32| -> u32 {
        if code_lines.contains(&line) {
            line
        } else {
            code_lines
                .range(line + 1..)
                .next()
                .copied()
                .unwrap_or(line + 1)
        }
    };

    let mut pragmas = Vec::new();
    let mut markers = Vec::new();
    for c in &lexed.comments {
        let t = c.text.trim();
        if let Some(rest) = t.strip_prefix("simlint:") {
            pragmas.push(parse_allow(rest, c.line, anchor(c.line)));
        } else if let Some(rest) = t.strip_prefix('~') {
            for id in rest.split([',', ' ']).filter(|s| !s.is_empty()) {
                markers.push(Marker {
                    line: anchor(c.line),
                    rule: id.to_string(),
                });
            }
        }
    }
    (pragmas, markers)
}

fn malformed(line: u32, applies_to: u32, problem: &str) -> Pragma {
    Pragma {
        line,
        applies_to,
        rules: Vec::new(),
        problem: Some(problem.to_string()),
    }
}

/// Parses the text after `simlint:`. Grammar:
/// `allow(<id>[, <id>...]) — <non-empty reason>` (the separator may be
/// an em dash, `--`, `-`, or `:`).
fn parse_allow(rest: &str, line: u32, applies_to: u32) -> Pragma {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return malformed(
            line,
            applies_to,
            "expected `simlint: allow(<rules>) — <reason>`",
        );
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return malformed(line, applies_to, "missing `(` after `allow`");
    };
    let Some(close) = rest.find(')') else {
        return malformed(line, applies_to, "missing `)` in rule list");
    };
    let ids: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    if ids.iter().any(String::is_empty) {
        return malformed(line, applies_to, "empty rule list");
    }
    for id in &ids {
        if id == "*" || id.eq_ignore_ascii_case("all") {
            return malformed(
                line,
                applies_to,
                "blanket suppression is not permitted; name the rule",
            );
        }
        if !crate::rules::is_suppressible(id) {
            return malformed(
                line,
                applies_to,
                &format!("`{id}` is not a suppressible rule id"),
            );
        }
    }
    let mut reason = rest[close + 1..].trim_start();
    for sep in ["—", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r;
            break;
        }
    }
    if reason.trim().is_empty() {
        return malformed(
            line,
            applies_to,
            "missing reason — every suppression must say why",
        );
    }
    Pragma {
        line,
        applies_to,
        rules: ids,
        problem: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas_of(src: &str) -> Vec<Pragma> {
        extract(&lex(src)).0
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let src = "let x = 1; // simlint: allow(D2) — lookup only\nlet y = 2;";
        let p = pragmas_of(src);
        assert_eq!(p.len(), 1);
        assert!(p[0].problem.is_none());
        assert_eq!(p[0].rules, ["D2"]);
        assert_eq!(p[0].applies_to, 1);
    }

    #[test]
    fn standalone_pragma_covers_next_code_line() {
        let src = "// simlint: allow(D1, D4) -- offline synthesis\n\nlet x = 1;";
        let p = pragmas_of(src);
        assert_eq!(p[0].rules, ["D1", "D4"]);
        assert_eq!(p[0].applies_to, 3);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let p = pragmas_of("// simlint: allow(D2)\nlet x = 1;");
        assert!(p[0].problem.as_deref().unwrap().contains("reason"));
    }

    #[test]
    fn blanket_and_unknown_rules_are_malformed() {
        let p = pragmas_of("// simlint: allow(*) — everything\nlet x = 1;");
        assert!(p[0].problem.as_deref().unwrap().contains("blanket"));
        let p = pragmas_of("// simlint: allow(D9) — no such rule\nlet x = 1;");
        assert!(p[0].problem.as_deref().unwrap().contains("D9"));
        let p = pragmas_of("// simlint: allow(P0) — nice try\nlet x = 1;");
        assert!(p[0].problem.is_some());
    }

    #[test]
    fn markers_anchor_like_pragmas() {
        let (_, m) = extract(&lex("//~ D1 D2\nlet x = 1; //~ D3\n"));
        assert_eq!(m.len(), 3);
        assert_eq!((m[0].rule.as_str(), m[0].line), ("D1", 2));
        assert_eq!((m[1].rule.as_str(), m[1].line), ("D2", 2));
        assert_eq!((m[2].rule.as_str(), m[2].line), ("D3", 2));
    }
}
