//! A minimal, *total* Rust lexer: just enough token structure for the
//! determinism rules to match identifiers and punctuation without ever
//! firing inside string literals, char literals, or comments.
//!
//! Totality is a hard requirement — a lint that panics on weird source
//! is worse than no lint — so the lexer walks a `Vec<char>` with
//! bounds-checked access only, every branch advances the cursor, and a
//! property test feeds it arbitrary byte soup. It understands the
//! token shapes that matter for *not* mis-firing: cooked strings with
//! escapes, byte strings, raw strings with any `#` count, raw
//! identifiers, char literals vs lifetimes, nested block comments, and
//! numeric literals (so `0.0` in a `fold` seed is one token).

/// Classification of one source token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, ...).
    Ident,
    /// Numeric literal, including float/suffix forms (`0.0`, `1_000u64`).
    Num,
    /// String literal of any flavor (cooked, byte, raw). Rules never
    /// match inside these; the text is kept only for debugging.
    Str,
    /// Char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Any single punctuation character.
    Punct,
}

/// One lexed token with its 1-based start line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for `Str`, the body without delimiters).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment, kept separately from the code token stream so the
/// pragma/marker parser can see it while rules cannot.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without the `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order. Comments are absent.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn at(cs: &[char], i: usize) -> Option<char> {
    cs.get(i).copied()
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never panics, for any input.
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut out = Lexed::default();
    let mut line: u32 = 1;
    let mut i = 0usize;

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (incl. doc comments).
        if c == '/' && at(&cs, i + 1) == Some('/') {
            let start = i + 2;
            let mut j = start;
            while j < n && cs[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: cs[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Block comment, nested, EOF-tolerant.
        if c == '/' && at(&cs, i + 1) == Some('*') {
            let start_line = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if cs[j] == '/' && at(&cs, j + 1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    j += 2;
                    continue;
                }
                if cs[j] == '*' && at(&cs, j + 1) == Some('/') {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    j += 2;
                    continue;
                }
                if cs[j] == '\n' {
                    line += 1;
                }
                text.push(cs[j]);
                j += 1;
            }
            out.comments.push(Comment {
                text,
                line: start_line,
            });
            i = j;
            continue;
        }

        // Raw strings, raw identifiers: r"..", r#".."#, r#ident.
        if c == 'r' {
            let mut k = i + 1;
            let mut hashes = 0usize;
            while at(&cs, k) == Some('#') {
                hashes += 1;
                k += 1;
            }
            if at(&cs, k) == Some('"') {
                i = raw_string(&cs, k + 1, hashes, &mut line, &mut out);
                continue;
            }
            if hashes == 1 && at(&cs, k).is_some_and(is_ident_start) {
                // Raw identifier `r#type`: lex the word itself.
                let (j, text) = ident(&cs, k);
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                i = j;
                continue;
            }
            // Plain identifier starting with `r` (or stray `r##`).
            let (j, text) = ident(&cs, i);
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }

        // Byte strings / byte chars: b"..", br#".."#, b'x'.
        if c == 'b' {
            match at(&cs, i + 1) {
                Some('"') => {
                    i = cooked_string(&cs, i + 2, &mut line, &mut out);
                    continue;
                }
                Some('\'') => {
                    i = char_or_lifetime(&cs, i + 1, &mut line, &mut out);
                    continue;
                }
                Some('r') => {
                    let mut k = i + 2;
                    let mut hashes = 0usize;
                    while at(&cs, k) == Some('#') {
                        hashes += 1;
                        k += 1;
                    }
                    if at(&cs, k) == Some('"') {
                        i = raw_string(&cs, k + 1, hashes, &mut line, &mut out);
                        continue;
                    }
                }
                _ => {}
            }
            let (j, text) = ident(&cs, i);
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }

        if is_ident_start(c) {
            let (j, text) = ident(&cs, i);
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }

        if c.is_ascii_digit() {
            let (j, text) = number(&cs, i);
            out.toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
            });
            i = j;
            continue;
        }

        if c == '"' {
            i = cooked_string(&cs, i + 1, &mut line, &mut out);
            continue;
        }

        if c == '\'' {
            i = char_or_lifetime(&cs, i, &mut line, &mut out);
            continue;
        }

        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// Consumes an identifier starting at `i`; returns (next index, text).
fn ident(cs: &[char], i: usize) -> (usize, String) {
    let mut j = i;
    let mut text = String::new();
    while let Some(c) = at(cs, j) {
        if is_ident_continue(c) {
            text.push(c);
            j += 1;
        } else {
            break;
        }
    }
    if text.is_empty() {
        // Defensive: callers guarantee an ident-start char at `i`, but
        // stay total even if that invariant ever breaks.
        if let Some(c) = at(cs, i) {
            text.push(c);
        }
        j = i + 1;
    }
    (j, text)
}

/// Consumes a numeric literal starting at `i` (ascii digit).
///
/// Accepts the alnum/underscore body plus one `.` when it starts a
/// fractional part (`2.0f64`) or closes a bare float (`0.` followed by
/// a delimiter) — but leaves `0..n` ranges and `x.0.method()` intact.
fn number(cs: &[char], i: usize) -> (usize, String) {
    let mut j = i;
    let mut text = String::new();
    let mut seen_dot = false;
    while let Some(c) = at(cs, j) {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            j += 1;
            continue;
        }
        if c == '.' && !seen_dot {
            let next = at(cs, j + 1);
            let fractional = next.is_some_and(|d| d.is_ascii_digit());
            let bare = !next.is_some_and(|d| d == '.' || is_ident_start(d));
            if fractional || bare {
                seen_dot = true;
                text.push(c);
                j += 1;
                continue;
            }
        }
        break;
    }
    (j, text)
}

/// Consumes a cooked string body; `j` is the index after the opening
/// quote. Pushes a `Str` token; returns the index after the close.
fn cooked_string(cs: &[char], mut j: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let start_line = *line;
    let mut text = String::new();
    while j < cs.len() {
        match cs[j] {
            '\\' => {
                if let Some(e) = at(cs, j + 1) {
                    if e == '\n' {
                        *line += 1;
                    }
                    text.push(e);
                }
                j += 2;
            }
            '"' => {
                j += 1;
                break;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                text.push(c);
                j += 1;
            }
        }
    }
    out.toks.push(Tok {
        kind: TokKind::Str,
        text,
        line: start_line,
    });
    j
}

/// Consumes a raw string body; `j` is the index after the opening
/// quote, `hashes` the number of `#`s to match at the close.
fn raw_string(cs: &[char], mut j: usize, hashes: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let start_line = *line;
    let mut text = String::new();
    while j < cs.len() {
        if cs[j] == '"' {
            let mut ok = true;
            for h in 0..hashes {
                if at(cs, j + 1 + h) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                j += 1 + hashes;
                break;
            }
        }
        if cs[j] == '\n' {
            *line += 1;
        }
        text.push(cs[j]);
        j += 1;
    }
    out.toks.push(Tok {
        kind: TokKind::Str,
        text,
        line: start_line,
    });
    j
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal);
/// `i` is the index of the quote. Char literals cannot span lines, so
/// an unterminated one ends at the newline rather than swallowing the
/// rest of the file.
fn char_or_lifetime(cs: &[char], i: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let c1 = at(cs, i + 1);
    // Lifetime: ident-start not immediately closed by a quote.
    if c1.is_some_and(is_ident_start) && at(cs, i + 2) != Some('\'') {
        let (j, text) = ident(cs, i + 1);
        out.toks.push(Tok {
            kind: TokKind::Lifetime,
            text,
            line: *line,
        });
        return j;
    }
    // Char literal (possibly escaped, possibly malformed).
    let start_line = *line;
    let mut j = i + 1;
    let mut text = String::new();
    while j < cs.len() {
        match cs[j] {
            '\\' => {
                if let Some(e) = at(cs, j + 1) {
                    text.push(e);
                }
                j += 2;
            }
            '\'' => {
                j += 1;
                break;
            }
            '\n' => break,
            c => {
                text.push(c);
                j += 1;
            }
        }
    }
    out.toks.push(Tok {
        kind: TokKind::Char,
        text,
        line: start_line,
    });
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_rule_text() {
        let src = r##"
            let s = "HashMap::new() and Instant::now()";
            let r = r#"partial_cmp in a raw "string""#;
            // HashMap in a line comment
            /* Instant::now() in a /* nested */ block */
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "HashMap"));
        assert!(!ids.iter().any(|t| t == "Instant"));
        assert!(!ids.iter().any(|t| t == "partial_cmp"));
        assert!(ids.iter().any(|t| t == "BTreeMap"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_keep_float_shape() {
        let nums: Vec<String> = lex(".fold(0.0, 2.5f64, 1_000, 0xFF, 0..10)")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, ["0.0", "2.5f64", "1_000", "0xFF", "0", "10"]);
    }

    #[test]
    fn line_numbers_are_1_based_and_track_newlines() {
        let src = "a\nb \"two\nline\"\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 2, 4]);
    }

    #[test]
    fn comments_record_start_line() {
        let src = "x\n// pragma here\ny";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].text.trim(), "pragma here");
    }

    #[test]
    fn unterminated_everything_is_total() {
        for src in [
            "\"unterminated",
            "r#\"unterminated raw",
            "/* unterminated block",
            "'u",
            "'",
            "b\"oops",
            "br##\"oops",
            "r#",
        ] {
            let _ = lex(src); // must not panic
        }
    }
}
