//! CLI entry point. Exit codes: 0 clean, 1 findings (or fixture
//! failures), 2 usage/IO error.

use simlint::{diagnostics, engine, fixtures, rules};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
simlint — workspace determinism lint

USAGE: simlint [--json] [--fixtures] [--rules] [--root <path>]

  (no flags)   lint every non-vendor workspace crate; exit 1 on findings
  --json       machine-readable output
  --fixtures   self-test the rule corpus under crates/simlint/fixtures
  --rules      print the rule catalog
  --root PATH  workspace root (default: nearest [workspace] Cargo.toml)
";

fn main() -> ExitCode {
    let mut json = false;
    let mut run_fixtures = false;
    let mut print_rules = false;
    let mut root_arg: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--fixtures" => run_fixtures = true,
            "--rules" => print_rules = true,
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if print_rules {
        for r in rules::CATALOG {
            println!("{}  {:<40} {}", r.id, r.name, r.rationale);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root_arg.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if run_fixtures {
        let dir = root.join("crates/simlint/fixtures");
        return match fixtures::run(&dir) {
            Ok(summary) => {
                println!("simlint: {summary}");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprintln!("simlint: fixture self-test FAILED\n{report}");
                ExitCode::from(1)
            }
        };
    }

    match engine::lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", diagnostics::json(&report.diags, report.files_scanned));
            } else {
                print!(
                    "{}",
                    diagnostics::human(&report.diags, report.files_scanned)
                );
            }
            if report.diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Finds the workspace root: the nearest ancestor (including the
/// current directory) whose `Cargo.toml` contains `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir: &Path = &cwd;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir.to_path_buf());
                }
            }
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return Err("no [workspace] Cargo.toml above the current directory".into()),
        }
    }
}
