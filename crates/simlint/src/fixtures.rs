//! The `--fixtures` self-test: lints a corpus of known-good and
//! known-bad sources and checks the diagnostics match the embedded
//! expectations exactly.
//!
//! Each fixture is a standalone `.rs` file (not compiled into any
//! target) whose first line declares the path it pretends to live at —
//! rules are scope-sensitive, so a D2 fixture must claim a sim-crate
//! path:
//!
//! ```text
//! // simlint-fixture: crates/npu-sim/src/example.rs
//! ```
//!
//! Expected findings are `//~ <RULE>` markers anchored like pragmas
//! (trailing marker → its own line; standalone marker line → the next
//! code line). A fixture with no markers must lint clean. The corpus
//! is the rule catalog's regression suite: every rule has at least one
//! firing fixture and one near-miss that must stay silent.

use crate::engine;
use crate::lexer;
use crate::pragma;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Outcome of running the corpus: `Ok(summary)` when every fixture
/// matched, `Err(report)` listing each mismatch otherwise.
pub fn run(dir: &Path) -> Result<String, String> {
    let mut files = match list_fixtures(dir) {
        Ok(f) => f,
        Err(e) => return Err(format!("cannot read fixtures dir {}: {e}", dir.display())),
    };
    if files.is_empty() {
        return Err(format!("no fixtures found under {}", dir.display()));
    }
    files.sort();

    let mut failures = Vec::new();
    let mut expected_total = 0usize;
    for path in &files {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<fixture>")
            .to_string();
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        match check_one(&name, &src) {
            Ok(n) => expected_total += n,
            Err(mut errs) => failures.append(&mut errs),
        }
    }

    if failures.is_empty() {
        Ok(format!(
            "fixtures pass: {} files, {} expected finding(s) reproduced, near-misses silent",
            files.len(),
            expected_total
        ))
    } else {
        Err(failures.join("\n"))
    }
}

/// Checks one fixture source; returns the number of expected findings
/// on success.
pub fn check_one(name: &str, src: &str) -> Result<usize, Vec<String>> {
    let Some(first) = src.lines().next() else {
        return Err(vec![format!("{name}: empty fixture")]);
    };
    let Some(rel) = first.trim().strip_prefix("// simlint-fixture:") else {
        return Err(vec![format!(
            "{name}: first line must be `// simlint-fixture: <pretend-path>`"
        )]);
    };
    let rel = rel.trim();

    let (_, markers) = pragma::extract(&lexer::lex(src));
    let mut expected: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for m in &markers {
        *expected.entry((m.rule.clone(), m.line)).or_insert(0) += 1;
    }

    let diags = engine::analyze(rel, src);
    let mut actual: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for d in &diags {
        *actual.entry((d.rule.to_string(), d.line)).or_insert(0) += 1;
    }

    let mut errs = Vec::new();
    for ((rule, line), n) in &expected {
        let got = actual.get(&(rule.clone(), *line)).copied().unwrap_or(0);
        if got != *n {
            errs.push(format!(
                "{name}: expected {rule} x{n} at line {line}, got x{got}"
            ));
        }
    }
    for ((rule, line), n) in &actual {
        if !expected.contains_key(&(rule.clone(), *line)) {
            let msg = diags
                .iter()
                .find(|d| d.rule == rule && d.line == *line)
                .map(|d| d.msg.as_str())
                .unwrap_or("");
            errs.push(format!(
                "{name}: unexpected {rule} x{n} at line {line}: {msg}"
            ));
        }
    }
    if errs.is_empty() {
        Ok(expected.values().sum())
    } else {
        Err(errs)
    }
}

fn list_fixtures(dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
    Ok(fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "rs"))
        .collect())
}
