//! The determinism rule catalog.
//!
//! Every rule encodes an invariant the repo's headline claims rest on
//! — golden `ServeReport`s pinned bit-for-bit, span coalescing exact
//! by construction, Monte Carlo results identical at any worker count,
//! fault replay determinism — and each one is derived from a real past
//! bug or a pinned convention:
//!
//! * **D1 seed-hygiene** — PR 6: `root + i` per-stream seeds gave
//!   adjacent SplitMix64 states that walk the same sequence one step
//!   apart; stream seeds must come from `SplitMix64::split_seeds` (or
//!   `fork`), and generators are constructed only in the seed-stream
//!   modules.
//! * **D2 no-wall-clock / no-unordered-iteration** — `HashMap`/
//!   `HashSet` iterate in seeded-random order and `Instant::now`/
//!   `SystemTime` read the host clock; either inside a sim crate can
//!   leak nondeterminism into a report.
//! * **D3 float-ordering** — PR 5: a `partial_cmp().unwrap()`
//!   percentile comparator panicked on NaN; comparators use
//!   `f64::total_cmp`, and f64 sum/fold reductions live in
//!   `sim_core::stats` where the left-to-right order is pinned.
//! * **D4 RNG-confinement** — PR 7: speculative draws broke span vs
//!   per-op agreement; raw `next_u64`/`next_f64` draws belong to the
//!   trace modules (`reliability`, `montecarlo`, `batch`).
//! * **D5 unit-safety** — ps/bytes/ops ledgers are integer until the
//!   report boundary; an `as f64` on a unit-suffixed value in the
//!   serve/system hot path is where bit-exactness quietly dies.
//!
//! Plus two pragma-hygiene rules that keep suppressions honest:
//! **P0** (malformed pragma: missing reason, unknown rule, blanket
//! allow) and **P1** (pragma that suppresses nothing).

use crate::diagnostics::Diagnostic;
use crate::engine::FileCtx;

/// Static description of one rule, for `--rules` and the README.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id used in diagnostics and pragmas.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line rationale including the historical bug it encodes.
    pub rationale: &'static str,
}

/// All rules, in id order.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        name: "seed-hygiene",
        rationale: "stream seeds come from SplitMix64::split_seeds/fork, never seed arithmetic, \
                    and generators are constructed only in the seed-stream modules (PR 6: root+i \
                    gave adjacent states walking the same sequence one step apart)",
    },
    RuleInfo {
        id: "D2",
        name: "no-wall-clock-no-unordered-iteration",
        rationale: "sim crates must not touch HashMap/HashSet (seeded-random iteration order) or \
                    Instant::now/SystemTime (host clock); both can leak into a report",
    },
    RuleInfo {
        id: "D3",
        name: "float-ordering",
        rationale: "comparators use f64::total_cmp, not partial_cmp (PR 5: NaN panicked a \
                    percentile sort), and f64 sum/fold reductions live in sim_core::stats where \
                    left-to-right order is pinned",
    },
    RuleInfo {
        id: "D4",
        name: "rng-confinement",
        rationale: "raw next_u64/next_f64 draws belong to the trace modules \
                    (reliability/montecarlo/batch); speculative draws broke span vs per-op \
                    agreement in PR 7",
    },
    RuleInfo {
        id: "D5",
        name: "unit-safety",
        rationale: "_ps/_bytes/_ops values stay integer through the serve/system hot path; \
                    `as f64` belongs at the report boundary only",
    },
    RuleInfo {
        id: "P0",
        name: "pragma-syntax",
        rationale: "a suppression pragma must name a real rule and give a reason; blanket or \
                    file-level suppressions are rejected",
    },
    RuleInfo {
        id: "P1",
        name: "pragma-unused",
        rationale: "a pragma that suppresses nothing is stale and must be removed",
    },
];

/// Whether `id` names any rule in the catalog.
pub fn is_known(id: &str) -> bool {
    CATALOG.iter().any(|r| r.id == id)
}

/// Whether `id` may appear in an `allow(...)` pragma. The pragma
/// hygiene rules themselves cannot be suppressed.
pub fn is_suppressible(id: &str) -> bool {
    is_known(id) && id.starts_with('D')
}

/// Crates whose sources sit on a deterministic replay path. D2 and
/// D3's reduction check apply here; offline-analysis crates
/// (`accuracy-lab`, `outlier-ecc`, `baselines`, `tiling`) and the
/// wall-clock-measuring `bench` crate are out of scope by
/// construction.
pub const SIM_CRATES: &[&str] = &["core", "sim-core", "llm-workload", "npu-sim", "flash-sim"];

/// The RNG's home module: the only place seed mixing arithmetic and
/// raw draw definitions are allowed without comment.
const RNG_HOME: &str = "crates/sim-core/src/rng.rs";

/// Modules approved to construct `SplitMix64` streams and make raw
/// draws: the RNG itself plus the three trace modules whose draw
/// order is pinned by replay tests.
pub const SEED_STREAM_MODULES: &[&str] = &[
    RNG_HOME,
    "crates/core/src/reliability.rs",
    "crates/core/src/montecarlo.rs",
    "crates/llm-workload/src/batch.rs",
];

/// The approved home of f64 reductions (`sum_ordered`, `Samples`,
/// `Estimate`): summation order is documented and pinned there.
const FLOAT_SUM_HOME: &str = "crates/sim-core/src/stats.rs";

/// The serve/system hot path watched by D5.
const UNIT_HOT_PATH: &[&str] = &[
    "crates/core/src/serve/mod.rs",
    "crates/core/src/serve/device.rs",
    "crates/core/src/system.rs",
];

/// Runs every rule over one analyzed file.
pub fn check_file(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    d1_seed_hygiene(ctx, out);
    d2_order_and_clock(ctx, out);
    d3_float_ordering(ctx, out);
    d4_rng_confinement(ctx, out);
    d5_unit_safety(ctx, out);
}

fn seedish(name: &str) -> bool {
    name == "root" || name.ends_with("seed")
}

fn d1_seed_hygiene(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let ctor_approved = SEED_STREAM_MODULES.contains(&ctx.rel.as_str());
    let rng_home = ctx.rel == RNG_HOME;
    for i in 0..ctx.len() {
        if !ctx.live(i) {
            continue;
        }
        if !ctor_approved
            && ctx.id(i) == Some("SplitMix64")
            && ctx.colons(i + 1)
            && ctx.id(i + 3) == Some("new")
            && ctx.punct(i + 4) == Some('(')
        {
            out.push(Diagnostic::new(
                "D1",
                &ctx.rel,
                ctx.line(i),
                "`SplitMix64::new` outside the seed-stream modules (rng/reliability/montecarlo/\
                 batch): derive stream seeds with `SplitMix64::split_seeds` or `fork` there, or \
                 justify the root construction with a pragma"
                    .to_string(),
            ));
        }
        if rng_home {
            continue;
        }
        // Arithmetic seed derivation: `<seed-ish> + x`, `<seed-ish> ^ x`,
        // or the mirrored `x + <seed-ish>`.
        if matches!(ctx.punct(i + 1), Some('+') | Some('^')) {
            let lhs_val = ctx.id(i).is_some() || ctx.num(i).is_some();
            let rhs_val = ctx.id(i + 2).is_some() || ctx.num(i + 2).is_some();
            let lhs_seed = ctx.id(i).is_some_and(seedish);
            let rhs_seed = ctx.id(i + 2).is_some_and(seedish);
            if (lhs_seed && rhs_val) || (rhs_seed && lhs_val) {
                out.push(Diagnostic::new(
                    "D1",
                    &ctx.rel,
                    ctx.line(i),
                    format!(
                        "arithmetic seed derivation `{} {} ...`: adjacent SplitMix64 states walk \
                         the same sequence one step apart (the PR 6 bug class); use \
                         `SplitMix64::split_seeds`",
                        ctx.text(i),
                        ctx.text(i + 1),
                    ),
                ));
            }
        }
    }
}

fn d2_order_and_clock(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !SIM_CRATES.contains(&ctx.crate_dir.as_str()) {
        return;
    }
    for i in 0..ctx.len() {
        if !ctx.live(i) {
            continue;
        }
        match ctx.id(i) {
            Some(name @ ("HashMap" | "HashSet")) => out.push(Diagnostic::new(
                "D2",
                &ctx.rel,
                ctx.line(i),
                format!(
                    "`{name}` in a sim crate: iteration order is seeded-random and any iteration \
                     can leak into a report — use BTreeMap/Vec indexing, or pragma a \
                     lookup-only use"
                ),
            )),
            Some("SystemTime") => out.push(Diagnostic::new(
                "D2",
                &ctx.rel,
                ctx.line(i),
                "`SystemTime` in a sim crate: simulation time comes from `sim_core::SimTime`, \
                 never the host clock"
                    .to_string(),
            )),
            Some("Instant") if ctx.colons(i + 1) && ctx.id(i + 3) == Some("now") => {
                out.push(Diagnostic::new(
                    "D2",
                    &ctx.rel,
                    ctx.line(i),
                    "`Instant::now` in a sim crate: wall-clock reads belong to the bench \
                     harness; simulation time comes from `sim_core::SimTime`"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

fn d3_float_ordering(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    // (a) `.partial_cmp` calls — everywhere, *including* test code: a
    // NaN-panicking comparator in a test is exactly the PR 5 class.
    for i in 0..ctx.len() {
        if ctx.punct(i) == Some('.') && ctx.id(i + 1) == Some("partial_cmp") {
            out.push(Diagnostic::new(
                "D3",
                &ctx.rel,
                ctx.line(i + 1),
                "`.partial_cmp` in a comparator panics or misorders on NaN (the PR 5 percentile \
                 bug class); use `f64::total_cmp`"
                    .to_string(),
            ));
        }
    }
    // (b) f64 reductions — sim crates, live code, outside the stats home.
    if !SIM_CRATES.contains(&ctx.crate_dir.as_str()) || ctx.rel == FLOAT_SUM_HOME {
        return;
    }
    for i in 0..ctx.len() {
        if !ctx.live(i) || ctx.punct(i) != Some('.') {
            continue;
        }
        if ctx.id(i + 1) == Some("sum")
            && ctx.colons(i + 2)
            && ctx.punct(i + 4) == Some('<')
            && ctx.id(i + 5) == Some("f64")
            && ctx.punct(i + 6) == Some('>')
        {
            out.push(Diagnostic::new(
                "D3",
                &ctx.rel,
                ctx.line(i + 1),
                "f64 sum reduction outside `sim_core::stats`: summation order is a bit-exactness \
                 invariant — use `stats::sum_ordered` (pinned left-to-right) or an `Estimate` \
                 helper"
                    .to_string(),
            ));
        }
        if ctx.id(i + 1) == Some("fold") && ctx.punct(i + 2) == Some('(') {
            if let Some(init) = ctx.num(i + 3) {
                if float_literal(init) && !minmax_reducer(ctx, i + 4) {
                    out.push(Diagnostic::new(
                        "D3",
                        &ctx.rel,
                        ctx.line(i + 1),
                        format!(
                            "float fold (seed `{init}`) outside `sim_core::stats`: summation \
                             order is a bit-exactness invariant — use `stats::sum_ordered` \
                             (order-insensitive f64::max/min folds are exempt)"
                        ),
                    ));
                }
            }
        }
    }
}

fn float_literal(s: &str) -> bool {
    s.contains('.') || s.ends_with("f64") || s.ends_with("f32")
}

/// Recognizes `, f64::max` / `, f32::min` after a fold seed: min/max
/// folds are associative-commutative over non-NaN floats, so order
/// cannot change the result.
fn minmax_reducer(ctx: &FileCtx, i: usize) -> bool {
    ctx.punct(i) == Some(',')
        && matches!(ctx.id(i + 1), Some("f64") | Some("f32"))
        && ctx.colons(i + 2)
        && matches!(ctx.id(i + 4), Some("max") | Some("min"))
}

fn d4_rng_confinement(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if SEED_STREAM_MODULES.contains(&ctx.rel.as_str()) {
        return;
    }
    for i in 0..ctx.len() {
        if !ctx.live(i) {
            continue;
        }
        if ctx.punct(i) == Some('.') {
            if let Some(name @ ("next_u64" | "next_f64")) = ctx.id(i + 1) {
                out.push(Diagnostic::new(
                    "D4",
                    &ctx.rel,
                    ctx.line(i + 1),
                    format!(
                        "raw `.{name}` draw outside the trace modules \
                         (reliability/montecarlo/batch): stray draws desynchronize span vs \
                         per-op replay (the PR 7 bug class) — draw through a module-owned \
                         stream, or pragma with a reason"
                    ),
                ));
            }
        }
    }
}

fn d5_unit_safety(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !UNIT_HOT_PATH.contains(&ctx.rel.as_str()) {
        return;
    }
    for i in 0..ctx.len() {
        if !ctx.live(i) {
            continue;
        }
        if let Some(name) = ctx.id(i) {
            if (name.ends_with("_ps") || name.ends_with("_bytes") || name.ends_with("_ops"))
                && ctx.id(i + 1) == Some("as")
                && ctx.id(i + 2) == Some("f64")
            {
                out.push(Diagnostic::new(
                    "D5",
                    &ctx.rel,
                    ctx.line(i),
                    format!(
                        "`{name} as f64` in the serve/system hot path: ps/bytes/ops ledgers stay \
                         integer until the report boundary — move the cast to report \
                         construction, or pragma the boundary site"
                    ),
                ));
            }
        }
    }
}
