//! `simlint` — the workspace determinism lint.
//!
//! An offline, dependency-free static-analysis pass that mechanically
//! enforces the simulator's bit-exactness invariants: the conventions
//! every golden `ServeReport`, span-equivalence proof, Monte Carlo
//! worker-invariance pin, and fault-replay test silently relies on.
//! See [`rules`] for the catalog (D1–D5 plus the pragma hygiene pair),
//! [`lexer`] for why rules never fire inside strings or comments, and
//! [`pragma`] for the line-level, reason-mandatory suppression syntax.
//!
//! Run it with `just simlint` (or `cargo run --release -p simlint`);
//! `--json` emits machine-readable findings, `--fixtures` self-tests
//! the rule corpus, and a nonzero exit means the tree is not clean.

pub mod diagnostics;
pub mod engine;
pub mod fixtures;
pub mod lexer;
pub mod pragma;
pub mod rules;
