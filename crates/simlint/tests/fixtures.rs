//! The fixture corpus is the rule catalog's regression suite. This
//! test runs it exactly as `simlint --fixtures` does, then pins each
//! rule's exact `file:line` reporting with inline sources, and finally
//! checks the workspace itself is clean (the tree is the last fixture:
//! a finding sneaking into a real crate fails `cargo test`, not just
//! CI's dedicated lint step).

use simlint::{engine, fixtures};
use std::path::Path;

#[test]
fn corpus_passes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    match fixtures::run(&dir) {
        Ok(summary) => assert!(summary.contains("fixtures pass"), "odd summary: {summary}"),
        Err(report) => panic!("fixture corpus failed:\n{report}"),
    }
}

/// `(rule, line)` pairs for findings of `rule` in `src` at pretend
/// path `rel`, asserting every finding names `rel` itself.
fn hits(rel: &str, src: &str, rule: &str) -> Vec<u32> {
    engine::analyze(rel, src)
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| {
            assert_eq!(d.file, rel, "finding must name the analyzed file");
            d.line
        })
        .collect()
}

#[test]
fn d1_reports_exact_location() {
    let src = "use sim_core::SplitMix64;\n\
               fn f(seed: u64) {\n\
               \x20   let _ = SplitMix64::new(seed);\n\
               }\n";
    assert_eq!(hits("crates/core/src/x.rs", src, "D1"), vec![3]);
    let arith = "fn f(seed: u64) -> u64 {\n    seed + 1\n}\n";
    assert_eq!(hits("crates/core/src/x.rs", arith, "D1"), vec![2]);
}

#[test]
fn d2_reports_exact_location() {
    let src = "fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
    assert_eq!(hits("crates/npu-sim/src/x.rs", src, "D2"), vec![2]);
    // Same source in a non-sim crate: silent.
    assert_eq!(hits("crates/bench/src/x.rs", src, "D2"), Vec::<u32>::new());
}

#[test]
fn d3_reports_exact_location() {
    let src = "fn f(v: &mut Vec<f64>) {\n\
               \x20   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
               }\n\
               fn g(v: &[f64]) -> f64 {\n\
               \x20   v.iter().sum::<f64>()\n\
               }\n";
    assert_eq!(hits("crates/flash-sim/src/x.rs", src, "D3"), vec![2, 5]);
}

#[test]
fn d4_reports_exact_location() {
    let src = "fn f(r: &mut sim_core::SplitMix64) -> u64 {\n    r.next_u64()\n}\n";
    assert_eq!(hits("crates/core/src/x.rs", src, "D4"), vec![2]);
    // The trace modules own their draws.
    assert_eq!(
        hits("crates/core/src/montecarlo.rs", src, "D4"),
        Vec::<u32>::new()
    );
}

#[test]
fn d5_reports_exact_location() {
    let src = "fn f(busy_ps: u64) -> f64 {\n    busy_ps as f64\n}\n";
    assert_eq!(hits("crates/core/src/serve/device.rs", src, "D5"), vec![2]);
    // Off the hot path: silent.
    assert_eq!(
        hits("crates/core/src/report.rs", src, "D5"),
        Vec::<u32>::new()
    );
}

#[test]
fn suppression_consumes_finding_and_hygiene_fires() {
    let ok = "fn f(busy_ps: u64) -> f64 {\n\
              \x20   // simlint: allow(D5) — report boundary\n\
              \x20   busy_ps as f64\n\
              }\n";
    assert!(engine::analyze("crates/core/src/serve/device.rs", ok).is_empty());

    let stale = "fn f() {} // simlint: allow(D5) — excuses nothing\n";
    assert_eq!(
        hits("crates/core/src/serve/device.rs", stale, "P1"),
        vec![1]
    );

    let blanket = "fn f(busy_ps: u64) -> f64 {\n\
                   \x20   // simlint: allow(*) — everything\n\
                   \x20   busy_ps as f64\n\
                   }\n";
    assert_eq!(
        hits("crates/core/src/serve/device.rs", blanket, "P0"),
        vec![2]
    );
    // The malformed pragma suppresses nothing: D5 still fires.
    assert_eq!(
        hits("crates/core/src/serve/device.rs", blanket, "D5"),
        vec![3]
    );
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = engine::lint_workspace(root).expect("workspace scan");
    assert!(
        report.diags.is_empty(),
        "workspace has simlint findings:\n{}",
        simlint::diagnostics::human(&report.diags, report.files_scanned)
    );
    assert!(report.files_scanned > 50, "scan missed the crates");
}
