//! Totality: the lexer and the whole analyze pipeline must never
//! panic, whatever bytes they are fed — simlint runs on every tree
//! state, including mid-edit garbage.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = simlint::lexer::lex(&src);
        // Every token consumes at least one input character.
        prop_assert!(lexed.toks.len() <= src.chars().count());
    }

    #[test]
    fn analyze_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = simlint::engine::analyze("crates/core/src/fuzz.rs", &src);
    }

    #[test]
    fn lexer_total_on_almost_rust(toks in proptest::collection::vec(
        prop_oneof![
            Just("fn f".to_string()),
            Just("\"open".to_string()),
            Just("r#\"raw".to_string()),
            Just("/* nest".to_string()),
            Just("'c'".to_string()),
            Just("'life".to_string()),
            Just("0.5e".to_string()),
            Just("// simlint: allow(".to_string()),
            Just("//~ D".to_string()),
        ],
        0..24,
    )) {
        // Truncated constructs — unterminated strings, half-open raw
        // strings, dangling comments and pragmas — are the lexer's
        // hard cases; gluing them together must still terminate.
        let src = toks.concat();
        let _ = simlint::engine::analyze("crates/core/src/fuzz.rs", &src);
    }
}
