// simlint-fixture: crates/flash-sim/src/quiet.rs
//! D3 near-misses that must stay silent.

fn ok(xs: &[f64], ns: &[u64]) -> (f64, u64, f64) {
    let m = xs.iter().copied().fold(0.0, f64::max); // order-insensitive reducer
    let s = ns.iter().sum::<u64>(); // integer sums are exact
    let t = ns.iter().fold(0, |a, x| a + x); // integer fold seed
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b)); // the sanctioned comparator
    (m, s + t, v[0])
}

struct W(f64);

impl W {
    fn partial_cmp(&self) {} // a definition, not a `.partial_cmp` call
}
