// simlint-fixture: crates/core/src/fleet.rs
//! D1 in the fleet layer: per-replica fault streams derived with seed
//! arithmetic hand adjacent replicas overlapping SplitMix64 sequences
//! — the exact bug class the fleet engine must avoid.
use sim_core::SplitMix64;

fn replica_seeds(seed: u64, replicas: usize) -> Vec<u64> {
    (0..replicas as u64).map(|replica| seed + replica).collect() //~ D1
}

fn replica_stream(seed: u64, replica: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ replica) //~ D1 D1
}
