// simlint-fixture: crates/core/src/example.rs
//! D1 firing cases: raw stream construction and seed arithmetic.
use sim_core::SplitMix64;

fn streams(seed: u64) -> Vec<u64> {
    let mut root = SplitMix64::new(seed); //~ D1
    let _ = root.next_bits();
    (0..4).map(|i| SplitMix64::new(seed + i).state()).collect() //~ D1 D1
}

fn mixed(root: u64) -> u64 {
    root ^ 0x9e37 //~ D1
}
