// simlint-fixture: crates/core/src/reliability.rs
//! An approved seed-stream module: construction is allowed there, but
//! arithmetic seed derivation is still the PR 6 bug class.
use sim_core::SplitMix64;

fn make(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed) // approved module: root construction allowed
}

fn derive(seed: u64) -> u64 {
    seed + 1 //~ D1
}
