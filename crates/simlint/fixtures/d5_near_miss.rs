// simlint-fixture: crates/core/src/report.rs
//! Report construction is off the D5 hot path; casts are the point.

fn seconds(busy_ps: u64) -> f64 {
    busy_ps as f64 * 1e-12
}
