// simlint-fixture: crates/core/src/example_draws.rs
//! D4 firing cases: raw draws outside the trace modules.
use sim_core::SplitMix64;

fn draw(rng: &mut SplitMix64) -> (u64, f64) {
    (rng.next_u64(), rng.next_f64()) //~ D4 D4
}
