// simlint-fixture: crates/npu-sim/src/example.rs
//! D2 firing cases: unordered containers and host clocks in a sim crate.
use std::collections::HashMap; //~ D2
use std::collections::HashSet; //~ D2
use std::time::{Instant, SystemTime}; //~ D2

fn slow() -> u128 {
    let t = Instant::now(); //~ D2
    t.elapsed().as_nanos()
}

fn stamp() -> SystemTime { //~ D2
    SystemTime::now() //~ D2
}

fn scratch() -> usize {
    // Two identical findings on one line dedup to a single diagnostic.
    let m: HashMap<u32, u32> = HashMap::new(); //~ D2
    let s: HashSet<u32> = HashSet::new(); //~ D2
    m.len() + s.len()
}
