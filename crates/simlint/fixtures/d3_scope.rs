// simlint-fixture: crates/outlier-ecc/src/example.rs
//! Offline-analysis crate: reductions are unscoped there, but the
//! comparator rule applies everywhere — NaN panics are never fine.

fn rms(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

fn worst(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ D3
    v[0]
}
