// simlint-fixture: crates/flash-sim/src/example.rs
//! D3 firing cases: NaN-unsafe comparators and unpinned f64 reductions.

fn worst(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ D3
    v[0]
}

fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() //~ D3
}

fn folded(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, x| a + x) //~ D3
}

#[cfg(test)]
mod tests {
    #[test]
    fn comparator_in_test_still_fires() {
        let mut v = vec![2.0f64, 1.0];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ D3
        assert_eq!(v[0], 1.0);
    }
}
