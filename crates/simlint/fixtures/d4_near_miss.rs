// simlint-fixture: crates/core/src/montecarlo.rs
//! An approved trace module: raw draws are its job, and its draw order
//! is pinned by the worker-invariance tests.
use sim_core::SplitMix64;

fn draw(rng: &mut SplitMix64) -> u64 {
    rng.next_u64()
}
