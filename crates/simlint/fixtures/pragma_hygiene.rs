// simlint-fixture: crates/core/src/pragmas.rs
//! Pragma hygiene: malformed and stale suppressions are findings.

//~ P0
fn a() -> u32 { 1 } // simlint: allow(D2)

//~ P0
fn b() -> u32 { 2 } // simlint: allow(*) — suppress everything

//~ P0
fn c() -> u32 { 3 } // simlint: allow(P1) — hygiene rules cannot be allowed

//~ P1
fn d() -> u32 { 4 } // simlint: allow(D4) — nothing here draws
