// simlint-fixture: crates/core/src/fleet.rs
//! The sanctioned shape of per-replica seed derivation: one
//! `split_seeds` call fans the root out into independent streams, and
//! assigning a derived seed into a config field is not arithmetic.
use sim_core::SplitMix64;

struct ReplicaCfg {
    seed: u64,
}

fn replica_cfgs(root_seed: u64, replicas: usize) -> Vec<ReplicaCfg> {
    let seeds = SplitMix64::split_seeds(root_seed, replicas);
    seeds
        .into_iter()
        .map(|replica_seed| ReplicaCfg { seed: replica_seed })
        .collect()
}
