// simlint-fixture: crates/core/src/serve/device.rs
//! D5 firing cases: unit-suffixed integers cast mid-hot-path.

fn occupancy(busy_ps: u64, makespan_ps: u64) -> f64 {
    busy_ps as f64 / makespan_ps as f64 //~ D5 D5
}

fn traffic(total_bytes: u64, cache_ops: u64) -> f64 {
    total_bytes as f64 + cache_ops as f64 //~ D5 D5
}

fn widen(tokens: u64, busy_ps: u64) -> (f64, u128) {
    (tokens as f64, busy_ps as u128) // not unit-suffixed / not f64: silent
}
