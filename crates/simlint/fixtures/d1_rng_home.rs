// simlint-fixture: crates/sim-core/src/rng.rs
//! The RNG home module: seed-mixing arithmetic is its whole job.

fn mix(seed: u64) -> u64 {
    seed ^ 0x9e3779b97f4a7c15
}
