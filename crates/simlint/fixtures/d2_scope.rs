// simlint-fixture: crates/bench/src/example.rs
//! The bench crate measures wall-clock time by design: out of D2 scope.
use std::time::Instant;

fn measure() -> u128 {
    let t = Instant::now();
    t.elapsed().as_nanos()
}
