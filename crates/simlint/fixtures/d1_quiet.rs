// simlint-fixture: crates/core/src/quiet.rs
//! D1/D4 near-misses: forking, non-seed identifiers, test code.
use sim_core::SplitMix64;

fn fork_is_fine(root: &mut SplitMix64) -> SplitMix64 {
    root.fork() // forking an existing stream is the sanctioned derivation
}

fn speed_is_not_a_seed(speed: u64) -> u64 {
    speed + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_fixture() {
        let mut rng = SplitMix64::new(7); // test code: scoped rules skip it
        let _ = rng.next_u64();
    }
}
