// simlint-fixture: crates/llm-workload/src/quiet.rs
//! D2 near-misses: ordered containers, strings, comments, test code.
use std::collections::BTreeMap;

// A comment may say HashMap or Instant::now without firing.
fn label() -> &'static str {
    "HashMap and SystemTime in a string are just text"
}

fn ordered(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut h = BTreeMap::new();
    for &x in xs {
        h.insert(x, x);
    }
    h
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn scratch_set_in_tests_is_fine() {
        let mut s = HashSet::new();
        s.insert(1u32);
        assert!(s.contains(&1));
    }
}
