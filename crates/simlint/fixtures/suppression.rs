// simlint-fixture: crates/npu-sim/src/suppressed.rs
//! A justified pragma consumes the finding and is itself silent.

struct Memo {
    // simlint: allow(D2) — lookup-only memo; never iterated, hash order cannot reach a report
    map: std::collections::HashMap<u64, u64>,
}

fn peek(m: &Memo, k: u64) -> Option<u64> {
    m.map.get(&k).copied()
}
