// simlint-fixture: crates/flash-sim/src/strings.rs
//! Rule text inside strings, raw strings, and comments never fires.

/* Instant::now() in a block comment. HashMap too. */
fn text() -> (&'static str, &'static str) {
    (
        "HashMap, SystemTime, rng.next_u64(), seed + 1",
        r#"Instant::now() and .partial_cmp in a raw string"#,
    )
}
