//! Property tests for tile shapes and GeMV plans.

use flash_sim::Topology;
use proptest::prelude::*;
use tiling::{fit_tile, optimal_tile, page_params, plan_gemv, AlphaInputs, Strategy, TileShape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimal tile always has exactly the device tile area and
    /// divides over the topology.
    #[test]
    fn optimal_tile_area_exact(ch_exp in 0u32..7, chips in 1usize..10, w4 in any::<bool>()) {
        let topo = Topology::custom(1 << ch_exp, chips);
        let bits = if w4 { 4 } else { 8 };
        let t = optimal_tile(&topo, bits);
        prop_assert_eq!(
            t.area(),
            topo.total_compute_cores() as u64 * page_params(&topo, bits)
        );
        let (ah, aw) = t.atomic(&topo);
        prop_assert_eq!(ah as u64 * aw as u64, page_params(&topo, bits));
    }

    /// The optimal tile is transfer-minimal among all exact-area
    /// power-of-two alternatives.
    #[test]
    fn optimal_tile_is_argmin(ch_exp in 0u32..6, chips in 1usize..9) {
        let topo = Topology::custom(1 << ch_exp, chips);
        let opt = optimal_tile(&topo, 8);
        let pp = page_params(&topo, 8);
        let cc = topo.compute_cores_per_channel() as u64;
        let mut ah = 1u64;
        while ah <= pp {
            let t = TileShape {
                h_req: (cc * ah) as usize,
                w_req: (topo.channels as u64 * (pp / ah)) as usize,
            };
            prop_assert!(opt.transfer_elems(&topo) <= t.transfer_elems(&topo),
                "{}x{} beats opt {}x{}", t.h_req, t.w_req, opt.h_req, opt.w_req);
            ah *= 2;
        }
    }

    /// fit_tile never returns a tile exceeding the matrix, and returns
    /// one whenever the trivially smallest candidate fits.
    #[test]
    fn fit_tile_respects_bounds(
        rows in 1usize..60_000,
        cols in 1usize..60_000,
    ) {
        let topo = Topology::cambricon_m();
        match fit_tile(&topo, 8, rows, cols) {
            Some(t) => {
                prop_assert!(t.h_req <= rows && t.w_req <= cols);
                prop_assert_eq!(
                    t.area(),
                    topo.total_compute_cores() as u64 * page_params(&topo, 8)
                );
            }
            None => {
                // No candidate fits: verify the extremes don't either.
                let pp = page_params(&topo, 8);
                let cc = topo.compute_cores_per_channel() as u64;
                let ch = topo.channels as u64;
                let mut ah = 1u64;
                while ah <= pp {
                    let h = (cc * ah) as usize;
                    let w = (ch * (pp / ah)) as usize;
                    prop_assert!(h > rows || w > cols);
                    ah *= 2;
                }
            }
        }
    }

    /// Plans conserve parameters and respect α bounds for arbitrary
    /// matrices and quantizations.
    #[test]
    fn plans_conserve_params(
        rows in 64usize..50_000,
        cols in 64usize..50_000,
        w4 in any::<bool>(),
    ) {
        let mut inp = AlphaInputs::paper(Topology::cambricon_s());
        if w4 {
            inp.weight_bits = 4;
            inp.act_bytes = 2;
        }
        let p = plan_gemv(&inp, rows, cols, Strategy::HardwareAware, None);
        prop_assert_eq!(p.flash_params + p.npu_params, rows as u64 * cols as u64);
        prop_assert!(p.alpha_achieved <= 1.0);
        // Workloads replicate the plan exactly.
        let wls = p.channel_workloads(&inp);
        let reads: usize = wls.iter().map(|w| w.read_pages).sum();
        prop_assert_eq!(reads, p.read_pages_total);
        prop_assert!(wls.iter().all(|w| w.rc_rounds == p.rc_rounds));
    }

    /// FlashOnly and NpuOnly are the two extremes of HardwareAware.
    #[test]
    fn strategies_are_ordered(rows in 1024usize..30_000, cols in 1024usize..30_000) {
        let inp = AlphaInputs::paper(Topology::cambricon_s());
        let hw = plan_gemv(&inp, rows, cols, Strategy::HardwareAware, None);
        let fo = plan_gemv(&inp, rows, cols, Strategy::FlashOnly, None);
        let no = plan_gemv(&inp, rows, cols, Strategy::NpuOnly, None);
        prop_assert!(no.flash_params == 0);
        prop_assert!(fo.flash_params >= hw.flash_params);
        prop_assert!(no.read_pages_total >= hw.read_pages_total);
    }
}
