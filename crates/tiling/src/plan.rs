//! Per-GeMV tiling plans.
//!
//! A [`GemvPlan`] decides, for one weight matrix, how many tiles the
//! flash compute cores execute (read-compute rounds) and how many pages
//! stream to the NPU (plain reads), following §V-B's α split. The plan
//! compiles directly into per-channel [`flash_sim::ChannelWorkload`]s.

use crate::alpha::{effective_rates, AlphaInputs, EffectiveRates};
use crate::shape::{fit_tile, page_params, TileShape};
use flash_sim::ChannelWorkload;

/// How GeMV work is distributed between flash and NPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Hardware-aware tiling: α to the flash cores, remainder streamed
    /// to the NPU in the channel bubbles (the paper's method).
    #[default]
    HardwareAware,
    /// Everything on the flash cores, nothing offloaded (the Figure 14
    /// "without hardware-aware tiling" baseline).
    FlashOnly,
    /// Everything streamed to the NPU (a conventional offloading device
    /// with no on-die compute).
    NpuOnly,
}

/// A tiling plan for one `rows × cols` weight matrix.
#[derive(Debug, Clone, Copy)]
pub struct GemvPlan {
    /// Matrix height (output length).
    pub rows: usize,
    /// Matrix width (input length).
    pub cols: usize,
    /// Tile shape used.
    pub tile: TileShape,
    /// Read-compute rounds (device-wide tiles sent to flash).
    pub rc_rounds: usize,
    /// Plain-read pages (total across channels) streamed to the NPU.
    pub read_pages_total: usize,
    /// Weight elements handled in flash.
    pub flash_params: u64,
    /// Weight elements handled on the NPU.
    pub npu_params: u64,
    /// The α actually achieved (flash share of elements).
    pub alpha_achieved: f64,
    /// Effective rates used to derive the split.
    pub rates: EffectiveRates,
    /// Input-broadcast bytes per channel per round.
    pub rc_input_bytes: u64,
    /// Result bytes per core per round.
    pub rc_result_bytes_per_core: u64,
    /// Arithmetic ops per page (compute-core load).
    pub ops_per_page: u64,
}

impl GemvPlan {
    /// Total weight elements of the matrix.
    pub fn total_params(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Compiles the plan into one workload per channel. Read pages are
    /// spread round-robin, so channels differ by at most one page.
    pub fn channel_workloads(&self, inp: &AlphaInputs) -> Vec<ChannelWorkload> {
        let ch = inp.topology.channels;
        let base = self.read_pages_total / ch;
        let extra = self.read_pages_total % ch;
        (0..ch)
            .map(|i| ChannelWorkload {
                rc_rounds: self.rc_rounds,
                rc_input_bytes: self.rc_input_bytes,
                rc_result_bytes_per_core: self.rc_result_bytes_per_core,
                ops_per_page: self.ops_per_page,
                read_pages: base + usize::from(i < extra),
            })
            .collect()
    }
}

/// Builds the tiling plan for a `rows × cols` GeMV.
///
/// The matrix is covered exactly: `flash_params + npu_params ==
/// rows × cols`. Partial tiles at the matrix edges always go to the NPU
/// (they would under-fill the compute cores).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0` or the tile shape (when overridden)
/// does not divide over the topology.
pub fn plan_gemv(
    inp: &AlphaInputs,
    rows: usize,
    cols: usize,
    strategy: Strategy,
    tile_override: Option<TileShape>,
) -> GemvPlan {
    assert!(rows > 0 && cols > 0, "empty GeMV");
    let topo = &inp.topology;
    // Use the override verbatim (ablations measure exactly that shape);
    // otherwise fit the transfer-optimal shape to this matrix. When no
    // whole tile fits the matrix streams entirely to the NPU.
    let fitted = tile_override.or_else(|| fit_tile(topo, inp.weight_bits, rows, cols));
    let tile = fitted.unwrap_or(TileShape {
        h_req: topo.compute_cores_per_channel(),
        w_req: topo.channels
            * (page_params(topo, inp.weight_bits) as usize
                / topo.compute_cores_per_channel().max(1))
            .max(1),
    });
    let rates = effective_rates(inp, tile);

    let total = rows as u64 * cols as u64;
    let pp = page_params(topo, inp.weight_bits);

    // Allocation happens at *page* granularity: atomic tiles are single
    // pages, so the flash can take any number of pages — the final
    // read-compute round may be partial (some cores idle, edge pages
    // padded). This follows the paper's "α proportion of the weight
    // matrix is assigned to flash in a tiled manner" without forcing
    // whole-device-tile multiples, which would strand up to one full
    // tile (millions of parameters) on the NPU for matrices only a few
    // tiles wide.
    let alpha_target = match (strategy, fitted) {
        (_, None) => 0.0, // nothing fits → NPU streams everything
        (Strategy::HardwareAware, _) => rates.alpha,
        (Strategy::FlashOnly, _) => 1.0,
        (Strategy::NpuOnly, _) => 0.0,
    };

    let cores_total = (topo.total_compute_cores()) as u64;
    let pages_total = total.div_ceil(pp);
    let ch = topo.channels as f64;
    // Estimated finish for a given flash page count: flash is bounded by
    // its round cadence, the NPU share by channel-bus time.
    let estimate = |flash_pages: u64| -> f64 {
        let rounds = flash_pages.div_ceil(cores_total);
        let npu_pages = pages_total - flash_pages;
        let t_flash = rounds as f64 * rates.cadence_s;
        let t_bus = rounds as f64 * rates.t_ctrl_s + npu_pages as f64 / ch * rates.t_page_s;
        t_flash.max(t_bus)
    };
    // Pick the better of the two round-boundary neighbours of the ideal
    // split (blind rounding can leave one side idle on small matrices).
    // The Figure 14 ablation strategies are exact by definition:
    // FlashOnly offloads nothing, NpuOnly computes nothing on-die.
    let ideal_pages = (alpha_target * pages_total as f64).min(pages_total as f64);
    let lo = (ideal_pages / cores_total as f64).floor() as u64 * cores_total;
    let hi = ((ideal_pages / cores_total as f64).ceil() as u64 * cores_total).min(pages_total);
    let flash_pages = match (strategy, fitted) {
        (_, None) | (Strategy::NpuOnly, _) => 0,
        (Strategy::FlashOnly, _) => pages_total,
        (Strategy::HardwareAware, _) => {
            if estimate(hi) <= estimate(lo) {
                hi
            } else {
                lo
            }
        }
    };
    let rc_rounds = flash_pages.div_ceil(cores_total) as usize;
    let flash_params = (flash_pages * pp).min(total);
    let npu_params = total - flash_params;
    let read_pages_total = (pages_total - flash_pages) as usize;

    let rc_input_bytes = (tile.w_req / topo.channels * inp.act_bytes) as u64;
    let rc_result_bytes_per_core =
        (tile.h_req / topo.compute_cores_per_channel() * inp.act_bytes) as u64;

    GemvPlan {
        rows,
        cols,
        tile,
        rc_rounds,
        read_pages_total,
        flash_params,
        npu_params,
        alpha_achieved: flash_params as f64 / total as f64,
        rates,
        rc_input_bytes,
        rc_result_bytes_per_core,
        ops_per_page: 2 * pp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Topology;

    fn inp_s() -> AlphaInputs {
        AlphaInputs::paper(Topology::cambricon_s())
    }

    #[test]
    fn plan_covers_matrix_exactly() {
        let p = plan_gemv(&inp_s(), 4096, 4096, Strategy::HardwareAware, None);
        assert_eq!(p.flash_params + p.npu_params, 4096 * 4096);
        assert!(p.rc_rounds > 0);
        assert!(p.read_pages_total > 0);
    }

    #[test]
    fn alpha_achieved_close_to_target() {
        let p = plan_gemv(&inp_s(), 16384, 4096, Strategy::HardwareAware, None);
        assert!(
            (p.alpha_achieved - p.rates.alpha).abs() < 0.05,
            "{} vs {}",
            p.alpha_achieved,
            p.rates.alpha
        );
    }

    #[test]
    fn flash_only_sends_all_whole_tiles() {
        let p = plan_gemv(&inp_s(), 4096, 4096, Strategy::FlashOnly, None);
        // 4096×4096 over 256×2048 tiles = 16×2 = 32 whole tiles.
        assert_eq!(p.rc_rounds, 32);
        assert_eq!(p.flash_params, 4096 * 4096);
        assert_eq!(p.read_pages_total, 0);
    }

    #[test]
    fn npu_only_reads_everything() {
        let p = plan_gemv(&inp_s(), 4096, 4096, Strategy::NpuOnly, None);
        assert_eq!(p.rc_rounds, 0);
        assert_eq!(p.read_pages_total, 1024); // 16 MB / 16 KB
    }

    #[test]
    fn ragged_matrix_padded_into_partial_round() {
        // 4100 rows: the 4 extra rows spill into a 33rd, partial round
        // (allocation is page-granular; edge pages are padded).
        let p = plan_gemv(&inp_s(), 4100, 4096, Strategy::FlashOnly, None);
        assert_eq!(p.flash_params, 4100 * 4096);
        assert_eq!(p.npu_params, 0);
        assert_eq!(p.rc_rounds, 33);
        assert_eq!(p.read_pages_total, 0);
    }

    #[test]
    fn workloads_split_reads_evenly() {
        let p = plan_gemv(&inp_s(), 4096, 4096, Strategy::HardwareAware, None);
        let wls = p.channel_workloads(&inp_s());
        assert_eq!(wls.len(), 8);
        let total: usize = wls.iter().map(|w| w.read_pages).sum();
        assert_eq!(total, p.read_pages_total);
        let max = wls.iter().map(|w| w.read_pages).max().unwrap();
        let min = wls.iter().map(|w| w.read_pages).min().unwrap();
        assert!(max - min <= 1);
        for w in &wls {
            assert_eq!(w.rc_rounds, p.rc_rounds);
        }
    }

    #[test]
    fn tile_override_is_used() {
        let t = TileShape {
            h_req: 128,
            w_req: 4096,
        };
        let p = plan_gemv(&inp_s(), 4096, 4096, Strategy::HardwareAware, Some(t));
        assert_eq!(p.tile, t);
        assert_eq!(p.rc_input_bytes, 4096 / 8);
        assert_eq!(p.rc_result_bytes_per_core, 128 / 4);
    }

    #[test]
    fn small_matrix_gets_no_flash_tiles() {
        // Smaller than one tile → everything to the NPU.
        let p = plan_gemv(&inp_s(), 128, 128, Strategy::HardwareAware, None);
        assert_eq!(p.rc_rounds, 0);
        assert_eq!(p.npu_params, 128 * 128);
        assert_eq!(p.read_pages_total, 1);
    }

    #[test]
    #[should_panic(expected = "empty GeMV")]
    fn zero_matrix_panics() {
        plan_gemv(&inp_s(), 0, 4096, Strategy::HardwareAware, None);
    }

    #[test]
    fn w4_plans_use_denser_pages() {
        let mut inp = inp_s();
        inp.weight_bits = 4;
        let p8 = plan_gemv(&inp_s(), 16384, 4096, Strategy::NpuOnly, None);
        let p4 = plan_gemv(&inp, 16384, 4096, Strategy::NpuOnly, None);
        assert_eq!(p4.read_pages_total * 2, p8.read_pages_total);
    }
}
