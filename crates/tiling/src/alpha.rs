//! Workload-distribution proportion α (§V-B).
//!
//! After fixing the tile shape, the planner balances the flash and NPU
//! finish times. We compute α from the *effective* steady-state rates of
//! the engine (including per-transaction command overhead and slice
//! chunking), which generalizes the paper's closed-form
//! `α = tr / (tr + trc)` (see [`flash_sim::RequestModel::alpha`] for the
//! dimensional-analysis note on the published formula).
//!
//! Steady state per channel, per round of duration `cadence`:
//!
//! * flash retires `ccorenum` pages (one per core),
//! * the bus spends `t_ctrl` on the round's input broadcast and results,
//! * the remaining `cadence − t_ctrl` carries plain reads of effective
//!   per-page bus time `t_page`, i.e. `n_read = (cadence − t_ctrl) / t_page`
//!   pages reach the NPU.
//!
//! Both consumers run for the same wall-clock, so the flash share is
//! `α = ccorenum / (ccorenum + n_read)`.

use crate::shape::TileShape;
use flash_sim::{CoreParams, SlicePolicy, Timing, Topology};

/// Effective per-channel steady-state rates for a tile shape.
#[derive(Debug, Clone, Copy)]
pub struct EffectiveRates {
    /// Round cadence (seconds): `max(tR, compute time per page)`.
    pub cadence_s: f64,
    /// Bus time per round spent on control transfers (seconds).
    pub t_ctrl_s: f64,
    /// Effective bus time per plain-read page (seconds).
    pub t_page_s: f64,
    /// Plain-read pages delivered per round in the bubbles.
    pub reads_per_round: f64,
    /// Flash workload share.
    pub alpha: f64,
    /// Per-channel weight-consumption rate, bytes/second (flash + NPU).
    pub channel_bytes_per_sec: f64,
}

/// Inputs needed to evaluate the effective rates.
#[derive(Debug, Clone, Copy)]
pub struct AlphaInputs {
    /// Device topology.
    pub topology: Topology,
    /// Flash timing.
    pub timing: Timing,
    /// Compute-core parameters.
    pub core: CoreParams,
    /// Slice policy (affects per-page read overhead).
    pub slice: SlicePolicy,
    /// Bytes per activation element.
    pub act_bytes: usize,
    /// Weight width in bits.
    pub weight_bits: u32,
}

impl AlphaInputs {
    /// Paper defaults (W8A8, sliced reads) on a topology.
    pub fn paper(topology: Topology) -> Self {
        AlphaInputs {
            topology,
            timing: Timing::paper(),
            core: CoreParams::paper(),
            slice: SlicePolicy::default(),
            act_bytes: 1,
            weight_bits: 8,
        }
    }
}

/// Computes the effective steady-state rates and α for a tile shape.
///
/// # Panics
///
/// Panics if the tile does not divide over the topology.
pub fn effective_rates(inp: &AlphaInputs, tile: TileShape) -> EffectiveRates {
    let topo = &inp.topology;
    let timing = &inp.timing;
    let cc = topo.compute_cores_per_channel() as f64;
    // Validate divisibility up front (panics with a clear message).
    let _ = tile.atomic(topo);

    let page_bytes = topo.page_bytes as u64;
    let page_params = page_bytes * 8 / inp.weight_bits as u64;
    let ops_per_page = 2 * page_params;
    let t_compute = inp.core.compute_time(ops_per_page).as_secs_f64();
    let cadence_s = timing.t_r.as_secs_f64().max(t_compute);

    let input_bytes = (tile.w_req / topo.channels * inp.act_bytes) as u64;
    let result_bytes = (tile.h_req / topo.compute_cores_per_channel() * inp.act_bytes) as u64;
    // Results stream without per-transaction command cycles (the
    // controller drains output buffers in streaming mode — matching the
    // engine's bus model); the input broadcast is one command.
    let t_ctrl_s = timing.bus_occupancy(input_bytes).as_secs_f64()
        + cc * timing.xfer(result_bytes).as_secs_f64();

    let chunks = inp.slice.chunks_per_page(topo.page_bytes) as f64;
    let t_page_s = chunks * timing.t_cmd.as_secs_f64() + timing.xfer(page_bytes).as_secs_f64();

    let reads_per_round = ((cadence_s - t_ctrl_s) / t_page_s).max(0.0);
    let alpha = cc / (cc + reads_per_round);
    let channel_bytes_per_sec = (cc + reads_per_round) * page_bytes as f64 / cadence_s;

    EffectiveRates {
        cadence_s,
        t_ctrl_s,
        t_page_s,
        reads_per_round,
        alpha,
        channel_bytes_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::optimal_tile;

    #[test]
    fn cam_s_alpha_near_0_7() {
        let topo = Topology::cambricon_s();
        let r = effective_rates(&AlphaInputs::paper(topo), optimal_tile(&topo, 8));
        assert!((0.6..0.8).contains(&r.alpha), "{}", r.alpha);
        // Per-channel consumption ≈ 3 GB/s (4 pages in flash + ~1.5 read
        // pages per 30 µs round).
        assert!(
            (2.6e9..3.4e9).contains(&r.channel_bytes_per_sec),
            "{}",
            r.channel_bytes_per_sec
        );
    }

    #[test]
    fn alpha_rises_with_more_cores_per_channel() {
        // More on-die compute per channel → flash takes a larger share.
        let s = Topology::cambricon_s(); // 4 cores/channel
        let l = Topology::cambricon_l(); // 16 cores/channel
        let a_s = effective_rates(&AlphaInputs::paper(s), optimal_tile(&s, 8)).alpha;
        let a_l = effective_rates(&AlphaInputs::paper(l), optimal_tile(&l, 8)).alpha;
        assert!(a_l > a_s, "{a_l} vs {a_s}");
    }

    #[test]
    fn suboptimal_tile_shapes_waste_bandwidth() {
        // Figure 13: non-optimal tiles raise control traffic and lower
        // the per-channel rate.
        let topo = Topology::cambricon_s();
        let inp = AlphaInputs::paper(topo);
        let opt = effective_rates(&inp, optimal_tile(&topo, 8));
        for (h, w) in [(128usize, 4096usize), (4096, 128)] {
            let r = effective_rates(&inp, TileShape { h_req: h, w_req: w });
            assert!(
                r.channel_bytes_per_sec < opt.channel_bytes_per_sec,
                "{h}x{w}: {} vs {}",
                r.channel_bytes_per_sec,
                opt.channel_bytes_per_sec
            );
        }
    }

    #[test]
    fn weak_core_lengthens_cadence_and_lowers_alpha() {
        let topo = Topology::cambricon_s();
        let mut inp = AlphaInputs::paper(topo);
        inp.core = CoreParams {
            macs: 1,
            freq_hz: 100_000_000,
            ..CoreParams::paper()
        };
        let r = effective_rates(&inp, optimal_tile(&topo, 8));
        assert!(r.cadence_s > 100e-6, "{}", r.cadence_s);
        // Longer cadence → more reads fit per round → smaller α.
        assert!(r.alpha < 0.5, "{}", r.alpha);
    }

    #[test]
    fn alpha_in_unit_interval_across_topologies() {
        for (ch, chips) in [(1, 1), (2, 4), (8, 2), (16, 4), (32, 8), (64, 4)] {
            let topo = Topology::custom(ch, chips);
            let r = effective_rates(&AlphaInputs::paper(topo), optimal_tile(&topo, 8));
            assert!(r.alpha > 0.0 && r.alpha <= 1.0, "{ch}x{chips}: {}", r.alpha);
            assert!(r.reads_per_round >= 0.0);
        }
    }

    #[test]
    fn unsliced_policy_raises_per_page_overhead_estimate() {
        let topo = Topology::cambricon_s();
        let mut inp = AlphaInputs::paper(topo);
        let sliced = effective_rates(&inp, optimal_tile(&topo, 8));
        inp.slice = SlicePolicy::Unsliced;
        let unsliced = effective_rates(&inp, optimal_tile(&topo, 8));
        // One command per page instead of one per chunk.
        assert!(unsliced.t_page_s < sliced.t_page_s);
    }
}
