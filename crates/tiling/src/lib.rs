//! # tiling — the hardware-aware tiling strategy (paper §V)
//!
//! Splits every weight-matrix GeMV between the flash compute cores and
//! the NPU:
//!
//! 1. [`optimal_tile`] derives the §V-A AM-GM-optimal tile shape
//!    (`Hreq = √(ccorenum·pagesize)`, `Wreq = channelnum·Hreq`),
//! 2. [`effective_rates`] computes the §V-B workload proportion α from
//!    the steady-state channel rates (generalizing the paper's
//!    `α = tr/(tr+trc)` with command overhead and slice chunking),
//! 3. [`plan_gemv`] covers a concrete matrix with tiles, assigns α of it
//!    to the flash and compiles per-channel workloads for `flash-sim`.
//!
//! ## Example
//!
//! ```
//! use flash_sim::Topology;
//! use tiling::{plan_gemv, AlphaInputs, Strategy};
//!
//! let inp = AlphaInputs::paper(Topology::cambricon_s());
//! // Plan the Wq GeMV of OPT-6.7B (4096 × 4096).
//! let plan = plan_gemv(&inp, 4096, 4096, Strategy::HardwareAware, None);
//! assert_eq!(plan.flash_params + plan.npu_params, 4096 * 4096);
//! // Cam-S sends roughly two-thirds of the work to the flash cores.
//! assert!(plan.alpha_achieved > 0.5 && plan.alpha_achieved < 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alpha;
pub mod plan;
pub mod shape;

pub use alpha::{effective_rates, AlphaInputs, EffectiveRates};
pub use plan::{plan_gemv, GemvPlan, Strategy};
pub use shape::{fit_tile, min_transfer_elems, optimal_tile, page_params, TileShape};
