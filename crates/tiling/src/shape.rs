//! Tile shapes and the paper's §V-A optimal-shape derivation.
//!
//! A weight matrix is cut into tiles of `Hreq × Wreq` elements; one tile
//! is one read-compute request, distributed over every compute core in
//! the device (each core handles a page-sized *atomic tile*). The channel
//! then carries, per tile, the input slice `Wreq / channelnum` (broadcast
//! to the cores of a channel) and the partial-result vector `Hreq` (the
//! per-core pieces), i.e. `Trans = Wreq + channelnum × Hreq` total.
//! Minimizing `Trans` under the fixed tile area
//! `Hreq × Wreq = channelnum × ccorenum × page_params` is an AM-GM
//! problem whose optimum is
//!
//! ```text
//! Hreq* = sqrt(ccorenum × page_params)
//! Wreq* = channelnum × sqrt(ccorenum × page_params)
//! ```

use flash_sim::Topology;

/// A tile shape in weight elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Tile height: length of the partial-result vector.
    pub h_req: usize,
    /// Tile width: length of the input-vector slice the tile consumes.
    pub w_req: usize,
}

impl TileShape {
    /// Elements covered by one tile.
    pub fn area(&self) -> u64 {
        self.h_req as u64 * self.w_req as u64
    }

    /// Total channel traffic per tile in elements (broadcast scheme of
    /// Figure 7(b)): `Wreq + channelnum × Hreq`.
    pub fn transfer_elems(&self, topo: &Topology) -> u64 {
        self.w_req as u64 + topo.channels as u64 * self.h_req as u64
    }

    /// Channel traffic per tile under the reuse-free splitting of
    /// Figure 7(c): `ccorenum × Wreq + channelnum × Hreq`. Always ≥ the
    /// broadcast scheme; kept for the §V-A comparison.
    pub fn transfer_elems_no_reuse(&self, topo: &Topology) -> u64 {
        topo.compute_cores_per_channel() as u64 * self.w_req as u64
            + topo.channels as u64 * self.h_req as u64
    }

    /// The atomic tile (per compute core): `Hreq/ccorenum × Wreq/channelnum`.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not divide evenly over the topology.
    pub fn atomic(&self, topo: &Topology) -> (usize, usize) {
        let cc = topo.compute_cores_per_channel();
        let ch = topo.channels;
        assert!(
            self.h_req % cc == 0 && self.w_req % ch == 0,
            "tile {}x{} does not divide over {} cores/channel × {} channels",
            self.h_req,
            self.w_req,
            cc,
            ch
        );
        (self.h_req / cc, self.w_req / ch)
    }
}

/// Number of weight elements in one page under `weight_bits` quantization.
pub fn page_params(topo: &Topology, weight_bits: u32) -> u64 {
    topo.page_bytes as u64 * 8 / weight_bits as u64
}

/// The §V-A optimal tile shape for a topology and weight width.
///
/// `Hreq` is rounded to the nearest multiple of `ccorenum` (and `Wreq`
/// adjusted to preserve the area) when the square root is not integral.
///
/// # Examples
///
/// ```
/// use flash_sim::Topology;
/// use tiling::optimal_tile;
///
/// // Cambricon-LLM-S, INT8: Hreq = √(4 × 16384) = 256, Wreq = 8 × 256.
/// let t = optimal_tile(&Topology::cambricon_s(), 8);
/// assert_eq!((t.h_req, t.w_req), (256, 2048));
/// ```
pub fn optimal_tile(topo: &Topology, weight_bits: u32) -> TileShape {
    let cc = topo.compute_cores_per_channel() as u64;
    let ch = topo.channels as u64;
    let pp = page_params(topo, weight_bits);
    debug_assert!(pp.is_power_of_two(), "page_params must be a power of two");
    // The atomic tile is `atomic_h × atomic_w = pp`; the ideal continuous
    // optimum has atomic_h = √(pp/cc). Since pp is a power of two, snap
    // atomic_h to the neighbouring powers of two (preserving the area
    // exactly) and keep whichever minimizes the per-tile transfer
    // `Trans = Wreq + channelnum × Hreq`.
    let ideal = ((pp as f64 / cc as f64).sqrt()).max(1.0);
    let lo = (1u64 << (ideal.log2().floor() as u32)).clamp(1, pp);
    let hi = (lo * 2).clamp(1, pp);
    let shape_for = |atomic_h: u64| TileShape {
        h_req: (cc * atomic_h) as usize,
        w_req: (ch * (pp / atomic_h)) as usize,
    };
    let (a, b) = (shape_for(lo), shape_for(hi));
    if a.transfer_elems(topo) <= b.transfer_elems(topo) {
        a
    } else {
        b
    }
}

/// The §V-A optimum constrained to fit inside a `rows × cols` matrix.
///
/// The unconstrained optimum can exceed a matrix dimension (e.g.
/// Cambricon-LLM-L's `Wreq* = 16384` against a 4096-wide projection);
/// real plans must then pick the transfer-minimizing shape among those
/// that keep the tile inside the matrix while preserving the exact tile
/// area (`cores × page_params`). Returns `None` when no whole tile fits
/// (the matrix then goes entirely to the NPU).
pub fn fit_tile(topo: &Topology, weight_bits: u32, rows: usize, cols: usize) -> Option<TileShape> {
    let cc = topo.compute_cores_per_channel() as u64;
    let ch = topo.channels as u64;
    let pp = page_params(topo, weight_bits);
    let mut best: Option<TileShape> = None;
    let mut atomic_h = 1u64;
    while atomic_h <= pp {
        if pp % atomic_h == 0 {
            let t = TileShape {
                h_req: (cc * atomic_h) as usize,
                w_req: (ch * (pp / atomic_h)) as usize,
            };
            if t.h_req <= rows && t.w_req <= cols {
                let better = match &best {
                    None => true,
                    Some(b) => t.transfer_elems(topo) < b.transfer_elems(topo),
                };
                if better {
                    best = Some(t);
                }
            }
        }
        atomic_h *= 2;
    }
    best
}

/// The minimum of `Trans` predicted by the AM-GM bound:
/// `2 × channelnum × sqrt(ccorenum × page_params)` elements.
pub fn min_transfer_elems(topo: &Topology, weight_bits: u32) -> f64 {
    let cc = topo.compute_cores_per_channel() as f64;
    let pp = page_params(topo, weight_bits) as f64;
    2.0 * topo.channels as f64 * (cc * pp).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimal_tiles() {
        // Table/Fig 13 context: Cam-S optimum is 256 × 2048 under INT8.
        let s = optimal_tile(&Topology::cambricon_s(), 8);
        assert_eq!((s.h_req, s.w_req), (256, 2048));
        // Cam-M: ccore = 8, √(8×16384) = 362 → snapped to 360; area kept.
        let m = optimal_tile(&Topology::cambricon_m(), 8);
        assert_eq!(m.h_req % 8, 0);
        assert_eq!(m.w_req % 16, 0);
        // Cam-L: ccore = 16, √(16×16384) = 512 exactly.
        let l = optimal_tile(&Topology::cambricon_l(), 8);
        assert_eq!((l.h_req, l.w_req), (512, 32 * 512));
    }

    #[test]
    fn optimal_is_at_amgm_bound() {
        for topo in [Topology::cambricon_s(), Topology::cambricon_l()] {
            let t = optimal_tile(&topo, 8);
            let bound = min_transfer_elems(&topo, 8);
            let actual = t.transfer_elems(&topo) as f64;
            assert!(
                actual <= bound * 1.01,
                "{actual} vs bound {bound} on {topo}"
            );
        }
    }

    #[test]
    fn optimal_beats_suboptimal_shapes() {
        // Figure 13's alternative shapes move more data.
        let topo = Topology::cambricon_s();
        let opt = optimal_tile(&topo, 8).transfer_elems(&topo);
        for (h, w) in [(128, 4096), (4096, 128)] {
            let t = TileShape { h_req: h, w_req: w };
            assert_eq!(t.area(), 256 * 2048); // same area
            assert!(t.transfer_elems(&topo) > opt, "{h}x{w}");
        }
    }

    #[test]
    fn broadcast_scheme_beats_no_reuse() {
        // §V-A: the Figure 7(c) splitting is strictly worse.
        let topo = Topology::cambricon_s();
        let t = optimal_tile(&topo, 8);
        assert!(t.transfer_elems_no_reuse(&topo) > t.transfer_elems(&topo));
    }

    #[test]
    fn atomic_tile_is_page_sized() {
        let topo = Topology::cambricon_s();
        let t = optimal_tile(&topo, 8);
        let (ah, aw) = t.atomic(&topo);
        assert_eq!(ah as u64 * aw as u64, page_params(&topo, 8));
    }

    #[test]
    fn w4_doubles_page_params() {
        let topo = Topology::cambricon_s();
        assert_eq!(page_params(&topo, 4), 2 * page_params(&topo, 8));
        let t = optimal_tile(&topo, 4);
        assert_eq!(
            t.area(),
            topo.total_compute_cores() as u64 * page_params(&topo, 4)
        );
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn atomic_rejects_ragged_shape() {
        let topo = Topology::cambricon_s();
        TileShape {
            h_req: 101,
            w_req: 2048,
        }
        .atomic(&topo);
    }
}
