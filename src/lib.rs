//! # cambricon-llm-repro — umbrella crate
//!
//! Re-exports the whole reproduction of *Cambricon-LLM: A Chiplet-Based
//! Hybrid Architecture for On-Device Inference of 70B LLM* (MICRO 2024)
//! so examples and integration tests can use one dependency. See
//! `README.md` for the crate map and quickstart; the experiment index
//! is `cargo run -p bench --bin repro -- list`.
//!
//! ```
//! use cambricon_llm_repro::prelude::*;
//!
//! let mut sys = System::new(SystemConfig::cambricon_l());
//! assert!(sys.decode_speed(&zoo::llama2_70b(), 1000) > 2.0);
//! ```

#![warn(missing_docs)]

pub use accuracy_lab;
pub use baselines;
pub use cambricon_llm;
pub use flash_sim;
pub use llm_workload;
pub use npu_sim;
pub use outlier_ecc;
pub use sim_core;
pub use tiling;

/// The most common imports in one place.
pub mod prelude {
    pub use baselines::{BaselineError, FlexGen, MlcLlm};
    pub use cambricon_llm::{
        DeviceEngine, EnergyModel, FaultConfig, FaultMode, FleetEngine, FleetReport, Interconnect,
        MonteCarlo, MonteCarloReport, PrefillMode, ReliabilitySummary, RouterPolicy,
        SchedulePolicy, ServeEngine, ServeReport, SpanMode, System, SystemConfig, WearReport,
        WearTrajectory,
    };
    pub use flash_sim::{SlicePolicy, Topology};
    pub use llm_workload::{zoo, ArrivalTrace, Quant, RequestShape};
    pub use outlier_ecc::{BitFlipModel, PageCodec};
    pub use tiling::{Strategy, TileShape};
}
