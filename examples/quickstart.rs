//! Quickstart: simulate on-device decode of a 70B LLM.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the three Table II systems, runs one decode step of
//! Llama2-70B and OPT-6.7B on each, and prints speed, channel
//! utilization and the data-movement breakdown.

use cambricon_llm_repro::prelude::*;

fn main() {
    let seq_len = 1000;
    let models = [zoo::llama2_70b(), zoo::opt_6_7b()];
    let energy = EnergyModel::calibrated();

    println!("Cambricon-LLM quickstart — single-batch decode at context {seq_len}\n");
    for model in &models {
        println!("{model}:");
        for cfg in SystemConfig::paper_variants() {
            let mut sys = System::new(cfg);
            let rep = sys.decode_token(model, seq_len);
            println!(
                "  {:<16} {:>7.2} tok/s | channel use {:>3.0}% | {:>6.2} GB moved | {:>5.2} J",
                cfg.name,
                rep.tokens_per_sec,
                rep.channel_utilization * 100.0,
                rep.traffic.transferred_bytes() as f64 / 1e9,
                energy.cambricon_token_j(&rep.traffic),
            );
        }
        // Baselines for context.
        match FlexGen::ssd().decode_speed(model, seq_len) {
            Ok(s) => println!("  {:<16} {s:>7.2} tok/s", "FlexGen-SSD"),
            Err(e) => println!("  {:<16} {e}", "FlexGen-SSD"),
        }
        match MlcLlm::default().decode_speed(model) {
            Ok(s) => println!("  {:<16} {s:>7.2} tok/s", "MLC-LLM"),
            Err(e) => println!("  {:<16} {e}", "MLC-LLM"),
        }
        println!();
    }

    println!("The abstract's headline: 70B at ~3.44 tok/s, 7B at ~36.34 tok/s on Cam-L.");
}
