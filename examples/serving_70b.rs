//! Multi-request serving of Llama2-70B on Cambricon-LLM-L: the
//! personal-agent device suddenly has a family of users.
//!
//! Runs a single-request baseline, then fleets of concurrent closed-loop
//! clients, and prints the `ServeReport` for each — showing (a) per-token
//! latency degrading *sub-linearly* in concurrency because one request's
//! NPU/KV phase overlaps another's flash GeMV phase, and (b) the shared
//! GeMV cache simulating each distinct weight shape once for the whole
//! fleet. The same ladder is then re-run under continuous batching,
//! where one weight stream per batch step lifts throughput well past
//! the per-request FCFS plateau until the in-flash compute ceiling
//! binds (~2.9× here), with KV-capacity admission control gating what
//! joins the batch. Then an open-loop Poisson trace, the classic
//! serving study — then the same Poisson scenario as a Monte Carlo
//! batch across seeded arrival traces, turning the single-draw report
//! into mean ± 95% CI estimates — and finally a fleet ladder: the one
//! Poisson trace routed across 1, 2, and 4 device replicas behind a
//! cluster router, showing how replication drains the queueing that
//! dominates the single device's TTFT p99, and how the routing policy
//! (round-robin vs least-loaded vs session-affinity) moves that tail
//! on the identical trace.
//!
//! ```text
//! cargo run --release --example serving_70b [-- <tokens_per_request>]
//! ```

use cambricon_llm_repro::prelude::*;

fn main() {
    let tokens: usize = match std::env::args().nth(1) {
        None => 8,
        Some(a) => match a.parse() {
            Ok(t) if t >= 1 => t,
            _ => {
                eprintln!(
                    "usage: serving_70b [<tokens_per_request>] (a positive integer, got {a:?})"
                );
                std::process::exit(2);
            }
        },
    };
    let cfg = SystemConfig::cambricon_l();
    let model = zoo::llama2_70b();
    let prompt = 1000;
    println!(
        "Serving {} on {} ({} tokens/request, {prompt}-token prompts)\n",
        model, cfg.name, tokens
    );

    let engine = ServeEngine::new(cfg, model.clone());

    // Closed-loop concurrency ladder: 1 request is the paper's
    // single-user scenario; the rest is the multi-user extension.
    let shape = RequestShape::new(prompt, tokens);
    let mut single_latency = 0.0;
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>11} {:>14}",
        "clients", "tok/s", "p50 ms/tok", "p99 ms/tok", "slowdown", "linear", "cache hit/miss"
    );
    println!("{}", "-".repeat(88));
    for clients in [1usize, 2, 4, 8] {
        let trace = ArrivalTrace::closed_loop(clients, 1, shape);
        let rep = engine.run(&trace, SchedulePolicy::RoundRobin);
        if clients == 1 {
            single_latency = rep.mean_token_latency_s;
        }
        let slowdown = rep.mean_token_latency_s / single_latency;
        println!(
            "{:<12} {:>9.2} {:>12.0} {:>12.0} {:>11.2}x {:>10}x {:>9}/{}",
            clients,
            rep.tokens_per_sec,
            rep.p50_token_latency_s * 1e3,
            rep.p99_token_latency_s * 1e3,
            slowdown,
            clients,
            rep.gemv_cache_hits,
            rep.gemv_cache_misses,
        );
    }

    // The same ladder under continuous batching: every rung walks the
    // plan in lockstep and streams the 70B weights once per batch step,
    // so throughput climbs past the per-request FCFS plateau until the
    // in-flash compute cores (sized to match the read rate at batch 1)
    // become the bottleneck. KV admission control reserves each
    // request's whole context in DRAM at the boundary it joins.
    println!("\nContinuous batching (max_batch = clients, KV-gated admission):");
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>14} {:>8}",
        "clients", "tok/s", "p50 ms/tok", "p99 ms/tok", "vs FCFS", "occupancy", "kv-rej"
    );
    println!("{}", "-".repeat(88));
    for clients in [1usize, 2, 4, 8] {
        let trace = ArrivalTrace::closed_loop(clients, 1, shape);
        let fcfs = engine.run(&trace, SchedulePolicy::Fcfs);
        let rep = engine.run(
            &trace,
            SchedulePolicy::ContinuousBatch { max_batch: clients },
        );
        println!(
            "{:<12} {:>9.2} {:>12.0} {:>12.0} {:>11.2}x {:>7.2} (pk {}) {:>8}",
            clients,
            rep.tokens_per_sec,
            rep.p50_token_latency_s * 1e3,
            rep.p99_token_latency_s * 1e3,
            rep.tokens_per_sec / fcfs.tokens_per_sec,
            rep.mean_batch_occupancy,
            rep.peak_batch_occupancy,
            rep.kv_rejections,
        );
    }

    // The same ladder with prefill modeled: each joining prompt runs
    // its prefill stage (NPU GeMMs overlapped with the one-shot weight
    // stream), holding both resources — so TTFT is arrival-relative
    // and, for 1000-token 70B prompts on a 2-TOPS NPU, dominated by
    // prefill compute. This is the honest first-token latency the
    // decode-only ladder above hides.
    println!("\nWith prefill modeled (TTFT = queue + prefill + first token):");
    let prefill_engine = ServeEngine::new(cfg, model.clone()).with_prefill(PrefillMode::Modeled);
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>14} {:>14}",
        "clients", "tok/s", "ttft p50 s", "ttft p99 s", "decode-ttft s", "prefill busy s"
    );
    println!("{}", "-".repeat(88));
    for clients in [1usize, 2, 4] {
        let trace = ArrivalTrace::closed_loop(clients, 1, shape);
        let rep = prefill_engine.run(&trace, SchedulePolicy::RoundRobin);
        println!(
            "{:<12} {:>9.3} {:>12.1} {:>12.1} {:>14.2} {:>14.1}",
            clients,
            rep.tokens_per_sec,
            rep.ttft_p50_s,
            rep.ttft_p99_s,
            rep.decode_ttft_s.mean().unwrap_or(0.0),
            rep.prefill_busy_s,
        );
    }

    // Open-loop Poisson arrivals near the device's service rate.
    println!("\nOpen-loop Poisson trace (8 requests, ~0.4 req/s), FCFS vs round-robin vs batched:");
    let trace = ArrivalTrace::poisson(0.4, 8, shape, 2024);
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 4 },
    ] {
        let rep = engine.run(&trace, policy);
        println!("\n[{policy:?}]");
        println!("{}", rep.summary());
    }

    // The same Poisson scenario as a distribution, not a draw: 8
    // arrival traces derived from one root seed, every seed replayed
    // on a clone of one pre-warmed pricing system. The CI half-widths
    // are what the single-trace reports above cannot give.
    println!("\nMonte Carlo across 8 seeded arrival traces (batched policy):");
    let mc = MonteCarlo::new(8, 2024);
    let report = mc.run(
        &engine,
        SchedulePolicy::ContinuousBatch { max_batch: 4 },
        |seed| ArrivalTrace::poisson(0.4, 8, shape, seed),
    );
    println!("{}", report.summary());

    // Fleet ladder: the same heavy Poisson trace routed across 1, 2,
    // and 4 replicas of the device behind a cluster router with 50 us
    // interconnect hops. One device drowns (TTFT p99 is pure queueing);
    // each doubling of the fleet thins every replica's arrivals and the
    // tail collapses. The router-policy rows then hold the fleet at 4
    // replicas and change only the dispatch decision — session affinity
    // (3 sessions on 4 replicas) deliberately trades balance for
    // locality, and the imbalance shows up straight in the tail.
    println!("\nFleet ladder (16 Poisson arrivals at 0.4 req/s, FCFS devices, 50 us hops):");
    let fleet_trace = ArrivalTrace::poisson(0.4, 16, shape, 2024);
    println!(
        "{:<12} {:<18} {:>9} {:>12} {:>12} {:>11}",
        "replicas", "router", "tok/s", "ttft p50 s", "ttft p99 s", "imbalance"
    );
    println!("{}", "-".repeat(88));
    let mut rows = vec![
        (1usize, RouterPolicy::RoundRobin),
        (2, RouterPolicy::RoundRobin),
        (4, RouterPolicy::RoundRobin),
        (4, RouterPolicy::LeastLoaded),
        (4, RouterPolicy::SessionAffinity { sessions: 3 }),
    ];
    for (replicas, router) in rows.drain(..) {
        let fleet = FleetEngine::new(DeviceEngine::new(cfg, model.clone()), replicas)
            .with_router(router)
            .with_interconnect(Interconnect::symmetric(sim_core::SimTime::from_micros(50)));
        let rep = fleet.run(&fleet_trace, SchedulePolicy::Fcfs);
        println!(
            "{:<12} {:<18} {:>9.2} {:>12.2} {:>12.2} {:>10.2}x",
            replicas,
            router.label(),
            rep.tokens_per_sec,
            rep.ttft_p50_s,
            rep.ttft_p99_s,
            rep.load_imbalance,
        );
    }
}
