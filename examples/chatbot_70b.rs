//! An interactive-assistant scenario: prefill a prompt, then stream a
//! reply, tracking latency and the growing KV cache — the robotics /
//! smartphone use-case the paper's introduction motivates.
//!
//! ```text
//! cargo run --example chatbot_70b [-- <prompt_tokens> <reply_tokens>]
//! ```

use cambricon_llm::prefill;
use cambricon_llm_repro::prelude::*;
use llm_workload::kv;
use npu_sim::{KvCache, NpuConfig};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let prompt = args.first().copied().unwrap_or(256);
    let reply = args.get(1).copied().unwrap_or(128);

    let cfg = SystemConfig::cambricon_l();
    let model = zoo::llama2_70b();
    println!("Chatbot on {}: {model}", cfg.name);
    println!("prompt {prompt} tokens, reply {reply} tokens\n");

    // Phase 1: prefill.
    let pre = prefill(&cfg, &model, prompt).expect("chatbot prompts are non-empty");
    println!(
        "prefill: {:.2} s to first token ({})",
        pre.ttft_s,
        if pre.compute_bound {
            "compute-bound"
        } else {
            "weight-stream-bound"
        }
    );

    // Phase 2: decode, tracking the KV cache in DRAM.
    let mut cache = KvCache::new(
        kv::kv_bytes_per_token(&model, Quant::W8A8),
        &NpuConfig::paper(),
    );
    cache.prefill(prompt).expect("prompt fits in DRAM");

    let mut sys = System::new(cfg);
    let mut elapsed = 0.0;
    for i in 0..reply {
        let rep = sys.decode_token(&model, cache.tokens());
        elapsed += rep.total.as_secs_f64();
        cache.append().expect("kv cache fits");
        if i == 0 || (i + 1) % 32 == 0 {
            println!(
                "  token {:>4}: {:>6.2} tok/s cumulative | kv cache {:>6.1} MB ({:>4.1}% of DRAM)",
                i + 1,
                (i + 1) as f64 / elapsed,
                cache.bytes() as f64 / 1e6,
                cache.occupancy() * 100.0
            );
        }
    }
    let speed = reply as f64 / elapsed;
    println!("\nreply: {reply} tokens in {elapsed:.1} s = {speed:.2} tok/s");
    println!(
        "total interaction latency: {:.1} s (a human reads ~4 words/s; \
         3-10 tok/s is interactive)",
        pre.ttft_s + elapsed
    );
}
