//! Reliability demo: store a *real trained model* in simulated flash,
//! age the flash (raise the bit error rate), and watch the on-die
//! outlier ECC keep inference usable — the paper's §VI mechanism end to
//! end on live weights.
//!
//! ```text
//! cargo run --release --example ecc_reliability
//! ```

use accuracy_lab::{
    data::gaussian_blobs,
    mlp::{Mlp, MlpConfig, QuantMlp},
    storage::mean_stored_accuracy,
};
use cambricon_llm_repro::prelude::*;
use outlier_ecc::protected_flip_rate;

fn main() {
    // Train and quantize the proxy classifier.
    let cfg = MlpConfig::default();
    let train = gaussian_blobs(2000, cfg.input, cfg.classes, 0.6, 11);
    let test = gaussian_blobs(800, cfg.input, cfg.classes, 0.6, 22);
    println!(
        "training a {}-{}-{} MLP...",
        cfg.input, cfg.hidden, cfg.classes
    );
    let net = Mlp::train(cfg, &train);
    let quant = QuantMlp::quantize(&net);
    println!(
        "clean accuracy: f32 {:.1}% | int8 {:.1}%\n",
        net.accuracy(&test) * 100.0,
        quant.accuracy(&test) * 100.0
    );

    // Weights live in flash pages; sweep the flash's age (BER).
    let codec = PageCodec {
        elems: 4096,
        protect_fraction: 0.01,
        value_copies: 2,
        spare_bytes: 512,
    };
    println!(
        "{:>8}  {:>12}  {:>12}  {:>14}",
        "BER", "raw acc", "ECC acc", "f_prot (theory)"
    );
    for ber in [1e-4, 1e-3, 5e-3, 1e-2, 3e-2, 1e-1] {
        let raw = mean_stored_accuracy(&quant, &test, &codec, ber, 6, 42, false);
        let ecc = mean_stored_accuracy(&quant, &test, &codec, ber, 6, 42, true);
        println!(
            "{ber:>8.0e}  {:>11.1}%  {:>11.1}%  {:>14.2e}",
            raw * 100.0,
            ecc * 100.0,
            protected_flip_rate(2, ber)
        );
    }
    println!(
        "\nProtected outliers flip at ~3x^2 instead of x (N=2 copies, majority vote);\n\
         fake outliers above the stored threshold are clamped to zero."
    );
}
