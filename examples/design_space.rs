//! Design-space exploration: sweep flash topology, quantization and the
//! architecture's two key mechanisms, and report the decode speed of
//! each point — the kind of study an architect would run before taping
//! out a configuration (paper §VIII-C/E).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use cambricon_llm_repro::prelude::*;

fn main() {
    let model = zoo::opt_6_7b();
    let seq = 1000;

    println!("Design space for {model} (decode, context {seq})\n");

    println!(
        "{:<28} {:>10} {:>12}",
        "configuration", "tok/s", "channel use"
    );
    println!("{}", "-".repeat(52));

    // Topology sweep.
    for (ch, chips) in [(4, 2), (8, 2), (8, 8), (16, 4), (32, 8)] {
        let mut sys = System::new(SystemConfig::custom(ch, chips));
        let rep = sys.decode_token(&model, seq);
        println!(
            "{:<28} {:>10.2} {:>11.0}%",
            format!("{ch} ch x {chips} chips"),
            rep.tokens_per_sec,
            rep.channel_utilization * 100.0
        );
    }

    // Mechanism ablations on Cam-S.
    let variants: [(&str, SystemConfig); 5] = [
        ("Cam-S (full)", SystemConfig::cambricon_s()),
        (
            "Cam-S w/o read slice",
            SystemConfig::cambricon_s().without_read_slice(),
        ),
        (
            "Cam-S flash-only",
            SystemConfig::cambricon_s().with_strategy(Strategy::FlashOnly),
        ),
        (
            "Cam-S NPU-only (offload)",
            SystemConfig::cambricon_s().with_strategy(Strategy::NpuOnly),
        ),
        (
            "Cam-S W4A16",
            SystemConfig::cambricon_s().with_quant(Quant::W4A16),
        ),
    ];
    println!();
    for (name, cfg) in variants {
        let mut sys = System::new(cfg);
        let rep = sys.decode_token(&model, seq);
        println!(
            "{:<28} {:>10.2} {:>11.0}%",
            name,
            rep.tokens_per_sec,
            rep.channel_utilization * 100.0
        );
    }

    // Tile-shape sensitivity.
    println!();
    for (name, tile) in [
        ("tile 256x2048 (optimal)", None),
        (
            "tile 128x4096",
            Some(TileShape {
                h_req: 128,
                w_req: 4096,
            }),
        ),
        (
            "tile 4096x128",
            Some(TileShape {
                h_req: 4096,
                w_req: 128,
            }),
        ),
    ] {
        let cfg = match tile {
            None => SystemConfig::cambricon_s(),
            Some(t) => SystemConfig::cambricon_s().with_tile(t),
        };
        let mut sys = System::new(cfg);
        let rep = sys.decode_token(&model, seq);
        println!(
            "{:<28} {:>10.2} {:>11.0}%",
            name,
            rep.tokens_per_sec,
            rep.channel_utilization * 100.0
        );
    }
}
